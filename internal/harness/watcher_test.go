package harness

import (
	"testing"
	"time"

	"mccs/internal/mccsd"
	"mccs/internal/ncclsim"
	"mccs/internal/netsim"
	"mccs/internal/policy"
	"mccs/internal/sim"
	"mccs/internal/topo"
)

// startLoopingJob launches an nGPU AllReduce loop and returns the rank-0
// bandwidth series collector.
func startLoopingJob(t *testing.T, s *sim.Scheduler, dep *mccsd.Deployment, cluster *topo.Cluster,
	gpus []topo.GPUID, bytes int64) *[]TimePoint {
	t.Helper()
	series := &[]TimePoint{}
	n := len(gpus)
	count := bytes / 4
	for rank, gpu := range gpus {
		rank, gpu := rank, gpu
		host := cluster.HostOfGPU(gpu)
		s.GoDaemon("job", func(p *sim.Proc) {
			f := dep.Service(host).Frontend("job")
			buf, err := f.MemAlloc(p, gpu, count*4, false)
			if err != nil {
				t.Error(err)
				return
			}
			comm, err := f.CommInitRank(p, "job", n, rank, gpu)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				h, err := comm.AllReduce(p, nil, buf, count, nil)
				if err != nil {
					t.Error(err)
					return
				}
				stats := h.Wait(p)
				if rank == 0 {
					*series = append(*series, TimePoint{T: stats.Done, AlgBW: stats.AlgBW()})
				}
			}
		})
	}
	return series
}

func phaseMean(series []TimePoint, from, to time.Duration) float64 {
	var sum float64
	n := 0
	for _, pt := range series {
		if pt.T >= sim.Time(from) && pt.T < sim.Time(to) {
			sum += pt.AlgBW
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestWatcherAutoReversesRing runs the Fig. 7 scenario with no manual
// intervention: the congestion watcher detects the external flow and
// reverses the ring by itself, exactly once.
func TestWatcherAutoReversesRing(t *testing.T) {
	cluster, err := topo.BuildSwitchRing(topo.RingConfig{
		Switches: 4, GPUsPerHost: 2, NICsPerHost: 2,
		NICBps: 50 * topo.Gbps, SwitchBps: 100 * topo.Gbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	fabric := netsim.NewFabric(s, cluster.Net)
	dep := mccsd.NewDeployment(s, cluster, fabric, ncclsim.Config(ncclsim.MCCS))
	var gpus []topo.GPUID
	for _, h := range cluster.Hosts {
		gpus = append(gpus, h.GPUs...)
	}
	series := startLoopingJob(t, s, dep, cluster, gpus, 128<<20)

	watcher := policy.NewController(dep).NewCongestionWatcher()
	watcher.Start(nil)

	// External 75 Gbps flow on a clockwise inter-switch link at t=3s.
	s.At(sim.Time(3*time.Second), func() {
		link, err := cluster.RingLinkBetween(1, 2)
		if err != nil {
			t.Error(err)
			return
		}
		l := cluster.Net.Link(link)
		fabric.StartFlow(netsim.FlowOpts{
			Src: l.From, Dst: l.To, Bytes: 0,
			Route: []netsim.LinkID{link}, FixedRate: 75 * topo.Gbps,
			External: true,
		})
	})
	if err := s.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	healthy := phaseMean(*series, 500*time.Millisecond, 3*time.Second)
	// The watcher needs Consecutive x Interval ~ 750ms to call it
	// persistent; allow 1.5s, then expect recovery.
	recovered := phaseMean(*series, 6*time.Second, 10*time.Second)
	if healthy == 0 || recovered == 0 {
		t.Fatalf("missing samples (healthy %.3g, recovered %.3g)", healthy, recovered)
	}
	if recovered < 0.9*healthy {
		t.Errorf("watcher did not restore bandwidth: %.3g -> %.3g", healthy, recovered)
	}
	if watcher.Remediations != 1 {
		t.Errorf("remediations = %d, want exactly 1 (no flapping)", watcher.Remediations)
	}
	// The reversal really happened (generation advanced).
	view := dep.View()
	comm, _ := dep.Comm(view[0].ID)
	if comm.Runners[0].Generation() != 1 {
		t.Errorf("generation = %d, want 1", comm.Runners[0].Generation())
	}
}

// TestWatcherReroutesOnClos: in a spine-leaf fabric the watcher prefers an
// immediate route re-pin over a ring reversal — path diversity exists.
func TestWatcherReroutesOnClos(t *testing.T) {
	env, err := NewTestbedEnv(ncclsim.MCCS)
	if err != nil {
		t.Fatal(err)
	}
	gpus, err := SingleAppGPUs(env.Cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	series := startLoopingJob(t, env.S, env.Deployment, env.Cluster, gpus, 32<<20)

	watcher := policy.NewController(env.Deployment).NewCongestionWatcher()
	watcher.Start(nil)

	// External flow saturating leaf0->spine0 (the pinned path of the
	// job's channel 0) at t=2s.
	env.S.At(sim.Time(2*time.Second), func() {
		var victim netsim.LinkID = -1
		for i := 0; i < env.Cluster.Net.NumLinks(); i++ {
			if env.Cluster.Net.Link(netsim.LinkID(i)).Name == "leaf0->spine0" {
				victim = netsim.LinkID(i)
			}
		}
		l := env.Cluster.Net.Link(victim)
		env.Fabric.StartFlow(netsim.FlowOpts{
			Src: l.From, Dst: l.To, Bytes: 0,
			Route: []netsim.LinkID{victim}, FixedRate: 40 * topo.Gbps,
			External: true,
		})
	})
	if err := env.S.RunUntil(sim.Time(8 * time.Second)); err != nil {
		t.Fatal(err)
	}

	healthy := phaseMean(*series, 200*time.Millisecond, 2*time.Second)
	recovered := phaseMean(*series, 5*time.Second, 8*time.Second)
	if recovered < 0.95*healthy {
		t.Errorf("reroute did not restore bandwidth: %.3g -> %.3g", healthy, recovered)
	}
	// Route re-pin, not a reconfiguration: generation stays 0.
	view := env.Deployment.View()
	comm, _ := env.Deployment.Comm(view[0].ID)
	if comm.Runners[0].Generation() != 0 {
		t.Errorf("generation = %d, want 0 (reroute should not reconfigure)", comm.Runners[0].Generation())
	}
	if watcher.Remediations != 1 {
		t.Errorf("remediations = %d, want 1", watcher.Remediations)
	}
}

// floodRingHop saturates both directions of the inter-switch hop between
// ring switches a and b with strict-priority external flows lasting dur.
// Congesting both directions keeps the job's ring exposed whichever way
// it currently runs, so a later episode on the same hop must re-trigger
// the watcher even after an earlier reversal moved the ring off one
// direction.
func floodRingHop(t *testing.T, s *sim.Scheduler, cluster *topo.Cluster, fabric *netsim.Fabric,
	a, b topo.RackID, at, dur time.Duration) {
	t.Helper()
	const rate = 75 * topo.Gbps
	s.At(sim.Time(at), func() {
		for _, pair := range [][2]topo.RackID{{a, b}, {b, a}} {
			link, err := cluster.RingLinkBetween(pair[0], pair[1])
			if err != nil {
				t.Error(err)
				return
			}
			l := cluster.Net.Link(link)
			fabric.StartFlow(netsim.FlowOpts{
				Src: l.From, Dst: l.To,
				Bytes: rate * dur.Seconds(),
				Route: []netsim.LinkID{link}, FixedRate: rate,
				External: true,
			})
		}
	})
}

// TestWatcherReArmsAfterEpisode is the regression test for the
// remediated-latch bug: the watcher used to mark a link remediated and
// never clear it, so a second, entirely separate congestion episode on
// the same hop was ignored forever. With hysteresis re-arm (Consecutive
// clean scans), two well-separated episodes must yield exactly two
// remediations.
func TestWatcherReArmsAfterEpisode(t *testing.T) {
	cluster, err := topo.BuildSwitchRing(topo.RingConfig{
		Switches: 4, GPUsPerHost: 2, NICsPerHost: 2,
		NICBps: 50 * topo.Gbps, SwitchBps: 100 * topo.Gbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	fabric := netsim.NewFabric(s, cluster.Net)
	dep := mccsd.NewDeployment(s, cluster, fabric, ncclsim.Config(ncclsim.MCCS))
	var gpus []topo.GPUID
	for _, h := range cluster.Hosts {
		gpus = append(gpus, h.GPUs...)
	}
	startLoopingJob(t, s, dep, cluster, gpus, 128<<20)

	watcher := policy.NewController(dep).NewCongestionWatcher()
	watcher.Start(nil)

	// Episode 1: [2s, 4s). The watcher needs Consecutive x Interval =
	// 750ms to call it persistent, then reverses the ring. The hop stays
	// clean for 4s afterwards — far more than the Consecutive clean
	// scans the re-arm hysteresis requires.
	floodRingHop(t, s, cluster, fabric, 1, 2, 2*time.Second, 2*time.Second)
	// Episode 2: [8s, 10s) on the same hop.
	floodRingHop(t, s, cluster, fabric, 1, 2, 8*time.Second, 2*time.Second)

	if err := s.RunUntil(sim.Time(12 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if watcher.Remediations != 2 {
		t.Errorf("remediations = %d, want 2 (one per episode; the old latched watcher never re-armed and stops at 1)",
			watcher.Remediations)
	}
	view := dep.View()
	comm, _ := dep.Comm(view[0].ID)
	if g := comm.Runners[0].Generation(); g != 2 {
		t.Errorf("generation = %d, want 2 (one reversal per episode)", g)
	}
}

// TestWatcherFlappingHysteresis guards the other side of the re-arm fix:
// a flow flapping around ExternalFraction with sub-Consecutive clean
// gaps is ONE episode. A naive single-clean-scan re-arm would reverse
// the ring on every burst; the hysteresis must keep it to exactly one
// remediation.
func TestWatcherFlappingHysteresis(t *testing.T) {
	cluster, err := topo.BuildSwitchRing(topo.RingConfig{
		Switches: 4, GPUsPerHost: 2, NICsPerHost: 2,
		NICBps: 50 * topo.Gbps, SwitchBps: 100 * topo.Gbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	fabric := netsim.NewFabric(s, cluster.Net)
	dep := mccsd.NewDeployment(s, cluster, fabric, ncclsim.Config(ncclsim.MCCS))
	var gpus []topo.GPUID
	for _, h := range cluster.Hosts {
		gpus = append(gpus, h.GPUs...)
	}
	startLoopingJob(t, s, dep, cluster, gpus, 128<<20)

	watcher := policy.NewController(dep).NewCongestionWatcher()
	watcher.Start(nil)

	// One flapping episode: 1s hot bursts (>= Consecutive hot scans at
	// 250ms intervals) separated by 300ms gaps (1-2 clean scans, below
	// the Consecutive=3 the re-arm hysteresis requires).
	floodRingHop(t, s, cluster, fabric, 1, 2, 2*time.Second, time.Second)
	floodRingHop(t, s, cluster, fabric, 1, 2, 3300*time.Millisecond, time.Second)
	floodRingHop(t, s, cluster, fabric, 1, 2, 4600*time.Millisecond, time.Second)

	if err := s.RunUntil(sim.Time(9 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if watcher.Remediations != 1 {
		t.Errorf("remediations = %d, want exactly 1 (flapping inside one episode must not re-trigger)",
			watcher.Remediations)
	}
}
