package harness

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mccs/internal/collective"
	"mccs/internal/mccsd"
	"mccs/internal/ncclsim"
	"mccs/internal/orchestrator"
	"mccs/internal/topo"
	"mccs/internal/workload"
)

// TestChurnSmoke is the make-churn acceptance run: 8 jobs through the
// orchestrator, all terminal, zero leaks (RunChurn errors on any leak),
// queued jobs admitted once capacity frees, and churn reconfigurations
// observed.
func TestChurnSmoke(t *testing.T) {
	res, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 8 {
		t.Fatalf("got %d jobs, want 8", len(res.Jobs))
	}
	queued := 0
	for _, j := range res.Jobs {
		if j.State != orchestrator.StateDone {
			t.Errorf("job %d state = %v, want done", j.ID, j.State)
		}
		if j.QueueDelay() > 0 {
			queued++
		}
	}
	if queued == 0 {
		t.Error("no job ever queued: the stream never filled the cluster")
	}
	if res.Reconfigs == 0 {
		t.Error("no churn-triggered reconfigurations ran")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %v, want (0, 1]", res.Utilization)
	}
}

// TestChurnSameSeedByteIdentical reruns the same seed and requires the
// job table and the telemetry export to match byte for byte.
func TestChurnSameSeedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name string) (string, []byte) {
		cfg := DefaultChurnConfig()
		cfg.TelemetryPath = filepath.Join(dir, name+".jsonl")
		res, err := RunChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tel, err := os.ReadFile(cfg.TelemetryPath)
		if err != nil {
			t.Fatal(err)
		}
		return FormatChurnTable(res), tel
	}
	table1, tel1 := runOnce("a")
	table2, tel2 := runOnce("b")
	if table1 != table2 {
		t.Errorf("job tables differ between same-seed runs:\n--- a ---\n%s--- b ---\n%s", table1, table2)
	}
	if string(tel1) != string(tel2) {
		t.Error("telemetry exports differ between same-seed runs")
	}
}

// TestChurnDifferentSeedsDiffer guards against the stream ignoring its
// seed.
func TestChurnDifferentSeedsDiffer(t *testing.T) {
	a := GenerateChurnJobs(1, 8, 30*time.Millisecond)
	b := GenerateChurnJobs(2, 8, 30*time.Millisecond)
	same := true
	for i := range a {
		if a[i].Tenant != b[i].Tenant || a[i].GPUs != b[i].GPUs || a[i].Arrival != b[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 generated identical job streams")
	}
}

// TestChurnGoldenSchedule pins the seed-1 schedule: which tenant got
// which GPUs, in what order, at what locality. Timings are left out so
// the golden survives cost-model tuning; the schedule itself must not
// drift silently.
func TestChurnGoldenSchedule(t *testing.T) {
	res, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, j := range res.Jobs {
		got.WriteString(scheduleLine(j) + "\n")
	}
	want := strings.Join([]string{
		"1 tenant-b 2 prio0 done host g0,g1",
		"2 tenant-c 2 prio0 done host g2,g3",
		"3 tenant-c 2 prio0 done host g0,g1",
		"4 tenant-a 4 prio1 done rack g0,g1,g2,g3",
		"5 tenant-d 8 prio1 done cross-rack g0,g1,g2,g3,g4,g5,g6,g7",
		"6 tenant-d 8 prio0 done cross-rack g0,g1,g2,g3,g4,g5,g6,g7",
		"7 tenant-c 4 prio0 done rack g0,g1,g2,g3",
		"8 tenant-b 4 prio1 done rack g4,g5,g6,g7",
	}, "\n") + "\n"
	if got.String() != want {
		t.Errorf("seed-1 schedule drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

func scheduleLine(j *orchestrator.Job) string {
	return strings.Join([]string{
		strconv.Itoa(j.ID), string(j.Spec.Tenant), strconv.Itoa(j.Spec.GPUs),
		"prio" + strconv.Itoa(j.Spec.Priority), j.State.String(), j.Locality.String(),
		gpuList(j.Placement),
	}, " ")
}

// zigzagPlacer hands jobs a rack-interleaved rank order — the
// topology-oblivious ordering a cloud launcher produces — so the
// initial rank-order ring zigzags across racks exactly like the paper's
// NCCL baseline.
type zigzagPlacer struct{}

func (zigzagPlacer) Name() string { return "zigzag" }

func (zigzagPlacer) Place(c *topo.Cluster, free []topo.GPUID, n int) ([]topo.GPUID, bool) {
	gpus, ok := orchestrator.RackSpread{}.Place(c, free, n)
	if !ok {
		return nil, false
	}
	byRack := make(map[topo.RackID][]topo.GPUID)
	var racks []topo.RackID
	for _, g := range gpus {
		r := c.RackOf(c.HostOfGPU(g))
		if _, seen := byRack[r]; !seen {
			racks = append(racks, r)
		}
		byRack[r] = append(byRack[r], g)
	}
	var out []topo.GPUID
	for i := 0; len(out) < len(gpus); i++ {
		for _, r := range racks {
			if i < len(byRack[r]) {
				out = append(out, byRack[r][i])
			}
		}
	}
	return out, true
}

// TestChurnReconfigImprovesSurvivor is the acceptance harness test: a
// surviving tenant whose communicator was planned with a naive
// rank-order ring gets measurably faster iterations after the
// orchestrator's churn-triggered recompute re-plans it, versus an
// identical run with reconfiguration disabled.
func TestChurnReconfigImprovesSurvivor(t *testing.T) {
	run := func(reconfig bool) *orchestrator.Job {
		// Service-mode deployment, but communicators start on the naive
		// rank-order ring (NCCL's "order of user-specified ranks"): the
		// recompute has real headroom to claw back.
		env, err := NewTestbedEnvWith(ncclsim.MCCS, 1, func(c *mccsd.Config) {
			c.Strategy = mccsd.RankOrderStrategy
		})
		if err != nil {
			t.Fatal(err)
		}
		orch := orchestrator.New(env.S, env.Cluster, env.Deployment, orchestrator.Config{
			Placer:      zigzagPlacer{},
			Reconfigure: reconfig,
			Autotune:    reconfig,
		})
		// The survivor: a communication-heavy tenant spread across both
		// racks, running long enough to straddle the churn.
		survivor := orch.Submit(orchestrator.JobSpec{
			Tenant: "survivor", GPUs: 4,
			Trace: workload.Trace{Name: "hot", Phases: []workload.Phase{
				{Kind: workload.Compute, Duration: 200 * time.Microsecond},
				{Kind: workload.Collective, Op: collective.AllReduce, Bytes: 32 << 20},
			}},
			Iterations: 12,
		})
		// The churn: a second tenant arrives mid-run and departs again.
		orch.Submit(orchestrator.JobSpec{
			Tenant: "churner", GPUs: 4, Arrival: 10 * time.Millisecond,
			Trace: workload.Trace{Name: "blip", Phases: []workload.Phase{
				{Kind: workload.Compute, Duration: 500 * time.Microsecond},
				{Kind: workload.Collective, Op: collective.AllReduce, Bytes: 4 << 20},
			}},
			Iterations: 2,
		})
		if err := env.S.Run(); err != nil {
			t.Fatal(err)
		}
		if err := orch.Err(); err != nil {
			t.Fatal(err)
		}
		if reconfig && orch.Reconfigs() == 0 {
			t.Fatal("no churn reconfiguration ran in the reconfig arm")
		}
		if survivor.State != orchestrator.StateDone {
			t.Fatalf("survivor state = %v", survivor.State)
		}
		return survivor
	}
	tuned := run(true)
	control := run(false)
	// Compare the post-churn tail: the survivor's final iterations run
	// after the recompute re-planned its communicator.
	tail := func(j *orchestrator.Job) time.Duration {
		iters := j.Result.IterTimes
		var sum time.Duration
		for _, d := range iters[len(iters)-4:] {
			sum += d
		}
		return sum / 4
	}
	tt, ct := tail(tuned), tail(control)
	if tt >= ct {
		t.Fatalf("churn reconfiguration did not improve the survivor: tail %v (reconfig) vs %v (control)", tt, ct)
	}
	t.Logf("survivor tail iteration: %v reconfigured vs %v control (%.1f%% faster)",
		tt, ct, 100*(1-float64(tt)/float64(ct)))
}
