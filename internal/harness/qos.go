package harness

import (
	"fmt"
	"time"

	"mccs/internal/ncclsim"
	"mccs/internal/policy"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/topo"
	"mccs/internal/workload"
)

// QoSSolution enumerates the Fig. 9 scheduling/QoS configurations.
type QoSSolution int

const (
	// SolutionECMP leaves routing to ECMP (rings still optimal).
	SolutionECMP QoSSolution = iota
	// SolutionFFA applies best-fit fair flow assignment.
	SolutionFFA
	// SolutionPFA reserves one cross-rack route for tenant A.
	SolutionPFA
	// SolutionPFATS additionally schedules tenant C around tenant B's
	// communication windows.
	SolutionPFATS
)

var qosNames = [...]string{"ECMP", "FFA", "PFA", "PFA+TS"}

func (s QoSSolution) String() string {
	if int(s) < len(qosNames) {
		return qosNames[s]
	}
	return "Unknown"
}

// QoSSolutions lists all four in the paper's order.
func QoSSolutions() []QoSSolution {
	return []QoSSolution{SolutionECMP, SolutionFFA, SolutionPFA, SolutionPFATS}
}

// QoSConfig parameterizes the Fig. 9 training-workload experiment: the
// paper's setup 3 with A training VGG-19 from scratch on 4 GPUs and B, C
// fine-tuning GPT-2.7B on 2 GPUs each.
type QoSConfig struct {
	Solution QoSSolution
	// IterationsA / IterationsBC set each job's length.
	IterationsA  int
	IterationsBC int
	Seed         uint64
}

// QoSResult reports job completion times.
type QoSResult struct {
	JCT map[spec.AppID]time.Duration
	// MeanIter is the mean iteration time per app (steady-state view).
	MeanIter map[spec.AppID]time.Duration
}

// qosEnv builds the deployment for a QoS run: the full MCCS service, with
// route pinning disabled for the ECMP solution.
func qosEnv(sol QoSSolution, salt uint64) (*Env, error) {
	sys := ncclsim.MCCS
	if sol == SolutionECMP {
		sys = ncclsim.MCCSNoFA
	}
	return NewTestbedEnvSalted(sys, salt)
}

// qosPlacement returns the setup-3 jobs: A on both GPUs of one host per
// rack; B and C on one GPU of each remaining host.
func qosPlacement(c *topo.Cluster) map[spec.AppID][]topo.GPUID {
	g := func(h topo.HostID, idx int) topo.GPUID { return c.Hosts[h].GPUs[idx] }
	return map[spec.AppID][]topo.GPUID{
		"A": {g(0, 0), g(0, 1), g(2, 0), g(2, 1)},
		"B": {g(1, 0), g(3, 0)},
		"C": {g(1, 1), g(3, 1)},
	}
}

// RunQoS executes the Fig. 9 experiment for one solution.
func RunQoS(cfg QoSConfig) (QoSResult, error) {
	if cfg.IterationsA <= 0 {
		cfg.IterationsA = 20
	}
	if cfg.IterationsBC <= 0 {
		cfg.IterationsBC = 20
	}
	env, err := qosEnv(cfg.Solution, cfg.Seed)
	if err != nil {
		return QoSResult{}, err
	}
	d := env.Deployment
	d.SetPriority("A", 2)
	d.SetPriority("B", 1)
	d.SetPriority("C", 0)
	place := qosPlacement(env.Cluster)

	futs := map[spec.AppID]*sim.Future[*workload.Result]{
		"A": workload.Launch(workload.RunConfig{
			Dep: d, App: "A", Key: "jobA", GPUs: place["A"],
			Trace: workload.VGG19DataParallel(1), Iterations: cfg.IterationsA,
		}),
		"B": workload.Launch(workload.RunConfig{
			Dep: d, App: "B", Key: "jobB", GPUs: place["B"],
			Trace: workload.GPT27BTensorParallel(1), Iterations: cfg.IterationsBC,
		}),
		"C": workload.Launch(workload.RunConfig{
			Dep: d, App: "C", Key: "jobC", GPUs: place["C"],
			Trace: workload.GPT27BTensorParallel(1), Iterations: cfg.IterationsBC,
		}),
	}

	allDone := &sim.Event{}
	bDone := &sim.Event{}
	env.S.Go("watchB", func(p *sim.Proc) {
		futs["B"].Wait(p)
		bDone.Signal(env.S)
	})
	runQoSController(env, cfg.Solution, allDone, bDone)

	res := QoSResult{
		JCT:      make(map[spec.AppID]time.Duration),
		MeanIter: make(map[spec.AppID]time.Duration),
	}
	var firstErr error
	env.S.Go("collect", func(p *sim.Proc) {
		for app, fut := range futs {
			r := fut.Wait(p)
			if r.Err != nil && firstErr == nil {
				firstErr = fmt.Errorf("job %s: %w", app, r.Err)
			}
			res.JCT[app] = r.JCT()
			var sum time.Duration
			for _, it := range r.IterTimes {
				sum += it
			}
			if len(r.IterTimes) > 0 {
				res.MeanIter[app] = sum / time.Duration(len(r.IterTimes))
			}
		}
		allDone.Signal(env.S)
	})
	if err := env.S.Run(); err != nil {
		return QoSResult{}, err
	}
	if firstErr != nil {
		return QoSResult{}, firstErr
	}
	return res, nil
}

// runQoSController drives the provider-side policy for a solution: wait
// for all three communicators, apply flow assignment, and for PFA+TS keep
// re-deriving tenant C's traffic windows from tenant B's live trace (the
// re-application re-anchors the window phase as B's cadence drifts).
func runQoSController(env *Env, sol QoSSolution, stop, bDone *sim.Event) {
	if sol == SolutionECMP {
		return
	}
	d := env.Deployment
	ctrl := policy.NewController(d)
	// Only tenant A (priority 2) is PFA-prioritized; B's priority 1 is
	// used later by TS, not by route reservation.
	ctrl.PrioThreshold = 2
	env.S.GoDaemon("qos-controller", func(p *sim.Proc) {
		for len(d.View()) < 3 {
			p.Sleep(time.Millisecond)
		}
		switch sol {
		case SolutionFFA:
			if err := ctrl.ApplyFFA(); err != nil {
				panic(err)
			}
		case SolutionPFA, SolutionPFATS:
			if err := ctrl.ApplyPFA(); err != nil {
				panic(err)
			}
		}
		if sol != SolutionPFATS {
			return
		}
		// Find B's communicator, wait for enough trace, then keep C
		// scheduled around B's windows.
		var bComm spec.CommID
		for _, ci := range d.View() {
			if ci.App == "B" {
				bComm = ci.ID
			}
		}
		for !stop.Done() {
			tr, err := d.CommTrace(bComm, 0)
			if err == nil && len(tr) >= 8 {
				break
			}
			p.Sleep(5 * time.Millisecond)
		}
		// Keep re-deriving the windows while B runs (the periodic
		// re-application re-anchors the window phase as B's cadence
		// drifts). Once the prioritized job completes, clear the stale
		// schedule — otherwise C would stay throttled by windows derived
		// from a tenant that no longer exists.
		for !stop.Done() && !bDone.Done() {
			if err := ctrl.ApplyTSFor(bComm, 0, []spec.AppID{"C"}); err != nil {
				// B may be between collectives; retry on next cycle.
				_ = err
			}
			p.Sleep(250 * time.Millisecond)
		}
		d.ClearTrafficSchedule("C")
	})
}

// DynamicEvent marks a Fig. 10 timeline event.
type DynamicEvent struct {
	T    sim.Time
	Name string
}

// DynamicConfig parameterizes the Fig. 10 dynamic-policy experiment.
type DynamicConfig struct {
	// T1, T2: B and C arrival times. T3: administrator applies PFA
	// prioritizing A. T4: TS prioritizing B over C.
	T1, T2, T3, T4 time.Duration
	RunFor         time.Duration
	Seed           uint64
}

// DefaultDynamicConfig spaces the arrivals and policy changes the way
// Fig. 10 does.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{
		T1: 20 * time.Second, T2: 40 * time.Second,
		T3: 60 * time.Second, T4: 80 * time.Second,
		RunFor: 100 * time.Second,
	}
}

// DynamicResult is the Fig. 10 timeline: per-app iteration completion
// stamps (the cmd derives normalized throughput) plus the event marks.
type DynamicResult struct {
	IterEnds  map[spec.AppID][]sim.Time
	IterTimes map[spec.AppID][]time.Duration
	Events    []DynamicEvent
}

// RunDynamic executes the Fig. 10 experiment: A occupies the cluster,
// B and C arrive at t1/t2 under FFA, PFA prioritizes A at t3, TS
// prioritizes B over C at t4.
func RunDynamic(cfg DynamicConfig) (DynamicResult, error) {
	env, err := NewTestbedEnvSalted(ncclsim.MCCS, cfg.Seed)
	if err != nil {
		return DynamicResult{}, err
	}
	d := env.Deployment
	d.SetPriority("A", 2)
	d.SetPriority("B", 1)
	d.SetPriority("C", 0)
	place := qosPlacement(env.Cluster)
	ctrl := policy.NewController(d)
	ctrl.PrioThreshold = 2

	const manyIters = 1 << 20 // run until the horizon cuts the jobs off
	iterEnds := map[spec.AppID][]sim.Time{}
	iterTimes := map[spec.AppID][]time.Duration{}
	launch := func(app spec.AppID, trace workload.Trace, at time.Duration) {
		workload.Launch(workload.RunConfig{
			Dep: d, App: app, Key: "job" + string(app), GPUs: place[app],
			Trace: trace, Iterations: manyIters, StartAt: sim.Time(at),
			OnIteration: func(_ int, end sim.Time, dur time.Duration) {
				iterEnds[app] = append(iterEnds[app], end)
				iterTimes[app] = append(iterTimes[app], dur)
			},
		})
	}
	launch("A", workload.VGG19DataParallel(1), 0)
	launch("B", workload.GPT27BTensorParallel(1), cfg.T1)
	launch("C", workload.GPT27BTensorParallel(1), cfg.T2)

	// Controller: re-apply FFA as tenants arrive, switch to PFA at T3,
	// add TS for C at T4.
	env.S.GoDaemon("dyn-controller", func(p *sim.Proc) {
		seen := 0
		for p.Now() < sim.Time(cfg.T3) {
			if n := len(d.View()); n != seen {
				seen = n
				if err := ctrl.ApplyFFA(); err != nil {
					panic(err)
				}
			}
			p.Sleep(10 * time.Millisecond)
		}
		if err := ctrl.ApplyPFA(); err != nil {
			panic(err)
		}
		for p.Now() < sim.Time(cfg.T4) {
			p.Sleep(10 * time.Millisecond)
		}
		var bComm spec.CommID
		for _, ci := range d.View() {
			if ci.App == "B" {
				bComm = ci.ID
			}
		}
		for {
			if err := ctrl.ApplyTSFor(bComm, 0, []spec.AppID{"C"}); err != nil {
				_ = err // B between collectives; retry
			}
			p.Sleep(250 * time.Millisecond)
		}
	})

	// The jobs run past the horizon by design; iteration timelines are
	// reconstructed afterwards from the service's own tracing facility
	// (the same data the TS policy consumes).
	if err := env.S.RunUntil(sim.Time(cfg.RunFor)); err != nil {
		return DynamicResult{}, err
	}

	return DynamicResult{
		IterEnds:  iterEnds,
		IterTimes: iterTimes,
		Events: []DynamicEvent{
			{T: sim.Time(cfg.T1), Name: "B arrives"},
			{T: sim.Time(cfg.T2), Name: "C arrives"},
			{T: sim.Time(cfg.T3), Name: "PFA prioritizes A"},
			{T: sim.Time(cfg.T4), Name: "TS prioritizes B"},
		},
	}, nil
}
