package harness

import (
	"fmt"
	"time"

	"mccs/internal/collective"
	"mccs/internal/diagnosis"
	"mccs/internal/mccsd"
	"mccs/internal/ncclsim"
	"mccs/internal/netsim"
	"mccs/internal/policy"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/telemetry"
	"mccs/internal/topo"
	"mccs/internal/trace"
	"mccs/internal/transport"
)

// ReconfigConfig parameterizes the Fig. 7 runtime-adaptation showcase:
// an 8-GPU AllReduce job on a ring of four switches, a rate-limited
// background flow appearing on one clockwise inter-switch link, and a
// provider-issued ring reversal that routes around it.
type ReconfigConfig struct {
	Bytes      int64         // per-iteration AllReduce size
	RunFor     time.Duration // total experiment span
	BgStart    time.Duration // when the background flow appears
	BgRate     float64       // background flow rate, bytes/sec
	ReconfigAt time.Duration // when the controller reverses the ring
	SwitchBps  float64
	NICBps     float64
	// MaxSlices overrides the proxy's intra-step pipelining when > 0.
	MaxSlices int
	// UnserializedConns disables the transport's per-connection FIFO
	// (the ablation showing why message serialization matters for
	// recovery after phase skew).
	UnserializedConns bool
	// TracePath, when set, records the run at full detail and writes
	// Chrome trace-event JSON there. The trace shows the background flow
	// start, the reconfiguration barrier phases, and the rate recovery.
	TracePath string
	// TelemetryPath, when set, samples the metrics registry during the
	// run and writes the series there (JSONL by default, ".prom" selects
	// Prometheus text). The series shows link utilization collapsing on
	// the contended link, the SLO violations it produces, and the
	// recovery after the ring reversal.
	TelemetryPath string
	// TelemetryEvery overrides the sampling interval
	// (telemetry.DefaultInterval when zero). Setting it with an empty
	// TelemetryPath still samples — the series is then only available
	// through ReconfigResult.Telemetry.
	TelemetryEvery time.Duration
	// DoctorPath, when set, attaches the online diagnosis engine for the
	// run and writes its health report there (incident JSONL when the
	// path ends in ".jsonl", text timeline otherwise). The report shows
	// the background flow as a degraded/contended-link episode and the
	// ring reversal as a reconfiguration barrier. Implies trace recording.
	DoctorPath string
	// Autotune replaces the hand-coded ring reversal at ReconfigAt with
	// a full autotuner pass: the cost model reads the background flow's
	// external load off the fabric and the search rediscovers the
	// reversal (or something better) on its own.
	Autotune bool
}

// DefaultReconfigConfig mirrors the paper's scenario: 100 G switch links,
// a 75 Gbps background flow at t=7.5 s, reconfiguration at t=12 s.
func DefaultReconfigConfig() ReconfigConfig {
	return ReconfigConfig{
		Bytes:      128 << 20,
		RunFor:     20 * time.Second,
		BgStart:    7500 * time.Millisecond,
		BgRate:     75 * 125e6,
		ReconfigAt: 12 * time.Second,
		SwitchBps:  100 * 125e6,
		NICBps:     50 * 125e6,
	}
}

// TimePoint is one iteration's bandwidth sample.
type TimePoint struct {
	T     sim.Time
	AlgBW float64
}

// ReconfigResult is the Fig. 7 time series plus phase averages.
type ReconfigResult struct {
	Series []TimePoint
	// Mean algorithm bandwidth before the background flow, between the
	// background flow and the reconfiguration, and after it.
	Before, Degraded, Recovered float64
	// Telemetry is the sampled metrics series when the run was
	// instrumented (TelemetryPath or TelemetryEvery set); nil otherwise.
	Telemetry *telemetry.Series
}

// RunReconfigShowcase executes the Fig. 7 experiment.
func RunReconfigShowcase(cfg ReconfigConfig) (ReconfigResult, error) {
	cluster, err := topo.BuildSwitchRing(topo.RingConfig{
		Switches: 4, GPUsPerHost: 2, NICsPerHost: 2,
		NICBps: cfg.NICBps, SwitchBps: cfg.SwitchBps,
	})
	if err != nil {
		return ReconfigResult{}, err
	}
	s := sim.New()
	if cfg.TracePath != "" || cfg.DoctorPath != "" {
		trace.Attach(s, trace.NewRecorder(trace.LevelFull, trace.DefaultCapacity))
	}
	var reg *telemetry.Registry
	if cfg.TelemetryPath != "" || cfg.TelemetryEvery > 0 {
		reg = telemetry.NewRegistry()
		telemetry.Attach(s, reg)
	}
	fabric := netsim.NewFabric(s, cluster.Net)
	svcCfg := ncclsim.Config(ncclsim.MCCS)
	if cfg.MaxSlices > 0 {
		svcCfg.Proxy.MaxSlices = cfg.MaxSlices
	}
	if cfg.UnserializedConns {
		svcCfg.Transport = transport.DefaultConfig(cluster.IntraHostBps)
		svcCfg.Transport.UnserializedSends = true
	}
	dep := mccsd.NewDeployment(s, cluster, fabric, svcCfg)
	var sampler *telemetry.Sampler
	if reg != nil {
		registerTraceDropped(s, reg)
		every := cfg.TelemetryEvery
		if every <= 0 {
			every = telemetry.DefaultInterval
		}
		sampler = telemetry.StartSampler(s, reg, every)
	}
	var doctor *diagnosis.Engine
	if cfg.DoctorPath != "" {
		var err error
		if doctor, err = AttachDoctor(s); err != nil {
			return ReconfigResult{}, err
		}
	}

	var gpus []topo.GPUID
	for _, h := range cluster.Hosts {
		gpus = append(gpus, h.GPUs...)
	}
	n := len(gpus)
	count := cfg.Bytes / 4
	var series []TimePoint
	var errs []error
	var commID spec.CommID

	// Rank processes loop forever as daemons; RunUntil bounds the
	// experiment. (Per-rank completion times skew slightly, so a
	// time-based loop exit would desynchronize the ranks' iteration
	// counts and deadlock the final collective.)
	for rank, gpu := range gpus {
		rank, gpu := rank, gpu
		host := cluster.HostOfGPU(gpu)
		s.GoDaemon(fmt.Sprintf("job:rank%d", rank), func(p *sim.Proc) {
			f := dep.Service(host).Frontend("job")
			buf, err := f.MemAlloc(p, gpu, count*4, false)
			if err != nil {
				errs = append(errs, err)
				return
			}
			comm, err := f.CommInitRank(p, "job", n, rank, gpu)
			if err != nil {
				errs = append(errs, err)
				return
			}
			if rank == 0 {
				commID = comm.ID()
			}
			for {
				h, err := comm.AllReduce(p, nil, buf, count, nil)
				if err != nil {
					errs = append(errs, err)
					return
				}
				stats := h.Wait(p)
				if rank == 0 {
					series = append(series, TimePoint{T: stats.Done, AlgBW: stats.AlgBW()})
				}
			}
		})
	}

	// Background flow between two switches in the clockwise direction
	// (the direction the job's ring uses).
	s.At(sim.Time(cfg.BgStart), func() {
		link, err := cluster.RingLinkBetween(1, 2)
		if err != nil {
			errs = append(errs, err)
			return
		}
		l := cluster.Net.Link(link)
		fabric.StartFlow(netsim.FlowOpts{
			Src: l.From, Dst: l.To,
			Bytes:     0, // endless
			Route:     []netsim.LinkID{link},
			FixedRate: cfg.BgRate,
			External:  true,
		})
	})

	// The external centralized manager issues the ring reversal — either
	// hand-coded (the paper's scripted Fig. 7) or rediscovered by the
	// autotuner from the observed link load.
	s.Go("controller", func(p *sim.Proc) {
		p.SleepUntil(sim.Time(cfg.ReconfigAt))
		if commID == 0 {
			errs = append(errs, fmt.Errorf("harness: communicator not ready at reconfig time"))
			return
		}
		if cfg.Autotune {
			ctrl := policy.NewController(dep)
			if _, err := ctrl.Autotune(p, commID, policy.AutotuneOptions{
				Op: collective.AllReduce, Bytes: cfg.Bytes,
			}); err != nil {
				errs = append(errs, err)
				return
			}
			// Let a few post-install iterations land, then record the
			// achieved completion time against the prediction (visible
			// as predicted-vs-achieved in mccs-top's TUNER section).
			p.Sleep(2 * time.Second)
			if _, err := ctrl.ObserveAchieved(commID, 0); err != nil {
				errs = append(errs, err)
			}
			return
		}
		cur := mustStrategy(dep, commID)
		rev := spec.Strategy{}
		for _, ch := range cur.Channels {
			order := append([]int(nil), ch.Order...)
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
			rev.Channels = append(rev.Channels, spec.ChannelSpec{Order: order, Route: ch.Route})
		}
		if err := dep.Reconfigure(p, commID, rev); err != nil {
			errs = append(errs, err)
		}
	})

	if err := s.RunUntil(sim.Time(cfg.RunFor)); err != nil {
		return ReconfigResult{}, err
	}
	if len(errs) > 0 {
		return ReconfigResult{}, errs[0]
	}
	if cfg.TracePath != "" {
		if err := WriteTraceFile(cfg.TracePath, s, fabric); err != nil {
			return ReconfigResult{}, err
		}
	}
	if cfg.TelemetryPath != "" {
		if err := WriteTelemetryFile(cfg.TelemetryPath, sampler); err != nil {
			return ReconfigResult{}, err
		}
	}
	if cfg.DoctorPath != "" {
		if err := WriteDoctorFile(cfg.DoctorPath, doctor, fabric); err != nil {
			return ReconfigResult{}, err
		}
	}

	res := ReconfigResult{Series: series}
	if sampler != nil {
		res.Telemetry = telemetry.SeriesOf(sampler)
	}
	var nb, nd, nr int
	// The first post-reconfig sample straddles the barrier stall; skip a
	// short settle window when averaging the recovered phase.
	settle := sim.Time(cfg.ReconfigAt) + sim.Time(500*time.Millisecond)
	for _, pt := range series {
		switch {
		case pt.T < sim.Time(cfg.BgStart):
			res.Before += pt.AlgBW
			nb++
		case pt.T < sim.Time(cfg.ReconfigAt):
			res.Degraded += pt.AlgBW
			nd++
		case pt.T >= settle:
			res.Recovered += pt.AlgBW
			nr++
		}
	}
	if nb > 0 {
		res.Before /= float64(nb)
	}
	if nd > 0 {
		res.Degraded /= float64(nd)
	}
	if nr > 0 {
		res.Recovered /= float64(nr)
	}
	return res, nil
}

func mustStrategy(dep *mccsd.Deployment, id spec.CommID) spec.Strategy {
	for _, ci := range dep.View() {
		if ci.ID == id {
			return ci.Strategy
		}
	}
	panic(fmt.Sprintf("harness: communicator %d not in view", id))
}
