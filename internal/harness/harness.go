// Package harness drives the paper's testbed experiments end to end: it
// builds a cluster + fabric + deployment for one of the four evaluated
// systems, launches tenant rank processes, runs measured collective loops
// and aggregates bandwidth statistics. The cmd/ tools, the root-level
// benchmarks and the integration tests all share these drivers.
package harness

import (
	"fmt"
	"os"
	"strings"
	"time"

	"mccs/internal/collective"
	"mccs/internal/diagnosis"
	"mccs/internal/gpusim"
	"mccs/internal/mccsd"
	"mccs/internal/metrics"
	"mccs/internal/ncclsim"
	"mccs/internal/netsim"
	"mccs/internal/policy"
	"mccs/internal/remediation"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/telemetry"
	"mccs/internal/topo"
	"mccs/internal/trace"
)

// Env is one experiment environment.
type Env struct {
	S          *sim.Scheduler
	Cluster    *topo.Cluster
	Fabric     *netsim.Fabric
	Deployment *mccsd.Deployment
	// Telemetry is the sim-time sampler when the env was built with a
	// telemetry interval; nil otherwise.
	Telemetry *telemetry.Sampler
}

// NewTestbedEnv builds the paper's 4-host testbed under the given system.
func NewTestbedEnv(system ncclsim.System) (*Env, error) {
	return NewTestbedEnvSalted(system, 0)
}

// NewTestbedEnvSalted is NewTestbedEnv with an ECMP label salt, letting
// repeated trials sample the ECMP collision distribution (the paper's
// shaded percentile bands come from exactly this variance).
func NewTestbedEnvSalted(system ncclsim.System, salt uint64) (*Env, error) {
	return newTestbedEnv(system, salt, nil, 0)
}

// NewTestbedEnvWith is NewTestbedEnvSalted plus a service-config mutation
// hook applied before the deployment is built. The chaos harness uses it
// to install exec observers and protocol weakenings; ablation drivers use
// it to override individual cost-model knobs.
func NewTestbedEnvWith(system ncclsim.System, salt uint64, mutate func(*mccsd.Config)) (*Env, error) {
	return newTestbedEnv(system, salt, mutate, 0)
}

// NewTestbedEnvTraced is NewTestbedEnvWith with a full-detail flight
// recorder (ring of traceCap spans; <= 0 selects trace.DefaultCapacity)
// attached before the deployment is built, so every layer's spans — not
// just op lifecycles — are captured. The chaos harness uses it to dump
// the complete schedule of a failing seed.
func NewTestbedEnvTraced(system ncclsim.System, salt uint64, traceCap int, mutate func(*mccsd.Config)) (*Env, *trace.Recorder, error) {
	if traceCap <= 0 {
		traceCap = trace.DefaultCapacity
	}
	env, err := newTestbedEnvFull(system, salt, mutate, traceCap, 0)
	if err != nil {
		return nil, nil, err
	}
	return env, trace.Of(env.S), nil
}

// NewTestbedEnvInstrumented is NewTestbedEnvTraced plus a telemetry
// registry and sampler (telemetryEvery <= 0 selects
// telemetry.DefaultInterval). The chaos harness uses it to cross-check
// the metrics plane against its invariants on every seed.
func NewTestbedEnvInstrumented(system ncclsim.System, salt uint64, traceCap int, telemetryEvery time.Duration, mutate func(*mccsd.Config)) (*Env, error) {
	if telemetryEvery <= 0 {
		telemetryEvery = telemetry.DefaultInterval
	}
	return newTestbedEnvFull(system, salt, mutate, traceCap, telemetryEvery)
}

func newTestbedEnv(system ncclsim.System, salt uint64, mutate func(*mccsd.Config), traceCap int) (*Env, error) {
	return newTestbedEnvFull(system, salt, mutate, traceCap, 0)
}

func newTestbedEnvFull(system ncclsim.System, salt uint64, mutate func(*mccsd.Config), traceCap int, telemetryEvery time.Duration) (*Env, error) {
	cluster, err := topo.BuildClos(topo.TestbedConfig())
	if err != nil {
		return nil, err
	}
	s := sim.New()
	if traceCap > 0 {
		trace.Attach(s, trace.NewRecorder(trace.LevelFull, traceCap))
	}
	// The registry must attach before the fabric and deployment are
	// built: every layer caches its metric handles at construction.
	var reg *telemetry.Registry
	if telemetryEvery > 0 {
		reg = telemetry.NewRegistry()
		telemetry.Attach(s, reg)
	}
	fabric := netsim.NewFabric(s, cluster.Net)
	cfg := ncclsim.Config(system)
	cfg.Proxy.LabelSalt = salt
	if mutate != nil {
		mutate(&cfg)
	}
	dep := mccsd.NewDeployment(s, cluster, fabric, cfg)
	env := &Env{S: s, Cluster: cluster, Fabric: fabric, Deployment: dep}
	if reg != nil {
		registerTraceDropped(s, reg)
		env.Telemetry = telemetry.StartSampler(s, reg, telemetryEvery)
	}
	return env, nil
}

// registerTraceDropped exports the flight recorder's ring-wrap loss as
// mccs_trace_dropped_total so operators (and the doctor) can see when
// span evidence is incomplete. The collector runs inside the sampler's
// existing event, so the simulated schedule is untouched. No-op when
// either plane is missing.
func registerTraceDropped(s *sim.Scheduler, reg *telemetry.Registry) {
	rec := trace.Of(s)
	if rec == nil || reg == nil {
		return
	}
	dropped := reg.Counter("mccs_trace_dropped_total", "spans")
	reg.AddCollector(func(sim.Time) {
		if d := int64(rec.Dropped()); d > dropped.Value() {
			dropped.Add(d - dropped.Value())
		}
	})
}

// WriteTraceFile flushes still-active flows into the scheduler's flight
// recorder and exports the recording as Chrome trace-event JSON at path.
// Harness drivers call it at experiment end when a -trace flag is set.
func WriteTraceFile(path string, s *sim.Scheduler, fabric *netsim.Fabric) error {
	rec := trace.Of(s)
	if rec == nil {
		return fmt.Errorf("harness: no trace recorder attached")
	}
	if fabric != nil {
		fabric.FlushTrace()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AttachDoctor attaches the online diagnosis engine to a scheduler whose
// flight recorder is already on, wiring in the telemetry registry when
// one is attached. Harness drivers call it before the run starts when a
// -doctor flag is set; the engine schedules no events, so the run is
// byte-identical with or without it.
func AttachDoctor(s *sim.Scheduler) (*diagnosis.Engine, error) {
	rec := trace.Of(s)
	if rec == nil {
		return nil, fmt.Errorf("harness: doctor needs a trace recorder attached")
	}
	return diagnosis.Attach(s, rec, telemetry.Of(s), diagnosis.DefaultConfig()), nil
}

// WriteDoctorFile finalizes a live-attached diagnosis engine and writes
// its report at path: incident JSONL when the path ends in ".jsonl", the
// human-readable timeline otherwise. Still-active flows are flushed into
// the recorder first so the final sweep sees their rate evidence.
func WriteDoctorFile(path string, eng *diagnosis.Engine, fabric *netsim.Fabric) error {
	if eng == nil {
		return fmt.Errorf("harness: no diagnosis engine attached")
	}
	if fabric != nil {
		fabric.FlushTrace()
	}
	rep := eng.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = rep.WriteJSONL(f)
	} else {
		err = rep.WriteText(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AttachRemediation attaches the self-healing control loop to an
// environment that already has a diagnosis engine: the remediation
// engine subscribes to the doctor's verdicts, scans link health on its
// own tick, and drives recovery through the policy controller. The
// caller owns the daemon's lifetime via Start/stop and collects the
// event log with WriteRemediationFile.
func AttachRemediation(env *Env, eng *diagnosis.Engine, cfg remediation.Config) (*remediation.Engine, error) {
	if eng == nil {
		return nil, fmt.Errorf("harness: remediation needs a diagnosis engine attached")
	}
	if trace.Of(env.S) == nil {
		return nil, fmt.Errorf("harness: remediation needs a trace recorder attached")
	}
	return remediation.Attach(env.S, env.Deployment, eng, cfg), nil
}

// WriteRemediationFile finalizes a live remediation engine and writes
// its event log at path: JSONL when the path ends in ".jsonl", the
// operator-facing text report otherwise.
func WriteRemediationFile(path string, eng *remediation.Engine) error {
	if eng == nil {
		return fmt.Errorf("harness: no remediation engine attached")
	}
	rep := eng.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = rep.WriteJSONL(f)
	} else {
		err = rep.WriteText(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTelemetryFile exports a sampler's series at path: JSONL by
// default, Prometheus text exposition when path ends in ".prom".
// Harness drivers call it at experiment end when -telemetry is set.
func WriteTelemetryFile(path string, sm *telemetry.Sampler) error {
	if sm == nil {
		return fmt.Errorf("harness: no telemetry sampler attached")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = telemetry.WritePrometheus(f, sm.Registry())
	} else {
		err = telemetry.WriteJSONL(f, sm)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// InterleavedHosts returns the testbed hosts in rack-interleaved order
// (rack0, rack1, rack0, rack1): the topology-oblivious node ordering a
// cloud tenant's launcher produces, which is what makes the NCCL
// baseline's rank-order ring zigzag across racks.
func InterleavedHosts(c *topo.Cluster) []topo.HostID {
	var rackHosts [][]topo.HostID
	for _, h := range c.Hosts {
		r := int(h.Rack)
		for len(rackHosts) <= r {
			rackHosts = append(rackHosts, nil)
		}
		rackHosts[r] = append(rackHosts[r], h.ID)
	}
	var out []topo.HostID
	for i := 0; ; i++ {
		progress := false
		for _, hs := range rackHosts {
			if i < len(hs) {
				out = append(out, hs[i])
				progress = true
			}
		}
		if !progress {
			return out
		}
	}
}

// SingleAppGPUs selects the GPUs for the paper's single-application
// setups in user-rank order: nGPUs = 4 takes one GPU per host, nGPUs = 8
// takes both, hosts rack-interleaved (see InterleavedHosts).
func SingleAppGPUs(c *topo.Cluster, nGPUs int) ([]topo.GPUID, error) {
	hosts := InterleavedHosts(c)
	perHost := nGPUs / len(hosts)
	if perHost < 1 || nGPUs%len(hosts) != 0 {
		return nil, fmt.Errorf("harness: %d GPUs over %d hosts", nGPUs, len(hosts))
	}
	var gpus []topo.GPUID
	for _, h := range hosts {
		if perHost > len(c.Hosts[h].GPUs) {
			return nil, fmt.Errorf("harness: host %d has %d GPUs, need %d", h, len(c.Hosts[h].GPUs), perHost)
		}
		gpus = append(gpus, c.Hosts[h].GPUs[:perHost]...)
	}
	return gpus, nil
}

// SingleAppConfig parameterizes a Fig. 6 run: one application, one
// collective, one size, one system.
type SingleAppConfig struct {
	System ncclsim.System
	Op     collective.Op
	// Bytes is the output-buffer size (the paper's x-axis).
	Bytes   int64
	NumGPUs int
	Warmup  int
	Iters   int
	// Trials repeats the whole experiment with different ECMP label
	// salts; samples pool across trials. Defaults to 1.
	Trials int
	// Seed offsets the trial salts.
	Seed uint64
	// Pipeline is the number of collectives kept in flight. The default
	// (1) synchronizes per iteration, which is how the paper's Fig. 6
	// benchmark observes the per-operation datapath latency; deeper
	// pipelining overlaps command latency with execution.
	Pipeline int
	// TracePath, when set, records the first trial at full detail and
	// writes Chrome trace-event JSON there (view in Perfetto or dump
	// with cmd/mccs-trace). Later trials run untraced.
	TracePath string
	// TelemetryPath, when set, samples the metrics registry during the
	// first trial and writes the series there (JSONL by default, ".prom"
	// selects Prometheus text). Later trials run uninstrumented.
	TelemetryPath string
	// TelemetryEvery overrides the sampling interval
	// (telemetry.DefaultInterval when zero).
	TelemetryEvery time.Duration
	// DoctorPath, when set, attaches the online diagnosis engine to the
	// first trial and writes its health report there (incident JSONL when
	// the path ends in ".jsonl", text timeline otherwise). Implies trace
	// recording for that trial; later trials run undoctored.
	DoctorPath string
	// Autotune runs the strategy autotuner once after communicator
	// setup and installs the winning strategy before the measured loop
	// (the -autotune flag of mccs-bench). Requires a service-mode
	// system: baseline (library) deployments refuse reconfiguration.
	Autotune bool
}

// SingleAppResult aggregates one Fig. 6 cell.
type SingleAppResult struct {
	Config SingleAppConfig
	// AlgBW and BusBW summarize per-iteration bandwidth in bytes/sec.
	AlgBW metrics.Summary
	BusBW metrics.Summary
}

// RunSingleApp executes a single-application collective benchmark,
// pooling per-iteration bandwidth samples across Trials ECMP-salt trials.
func RunSingleApp(cfg SingleAppConfig) (SingleAppResult, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	var algbw []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		tcfg := cfg
		if trial > 0 {
			tcfg.TracePath = ""
			tcfg.TelemetryPath = ""
			tcfg.DoctorPath = ""
		}
		vals, err := runSingleTrial(tcfg, cfg.Seed+uint64(trial)*0x9e3779b97f4a7c15)
		if err != nil {
			return SingleAppResult{}, err
		}
		algbw = append(algbw, vals...)
	}
	n := cfg.NumGPUs
	factor := collective.BusBWFactor(cfg.Op, n)
	busbw := make([]float64, len(algbw))
	for i, v := range algbw {
		busbw[i] = v * factor
	}
	return SingleAppResult{
		Config: cfg,
		AlgBW:  metrics.Summarize(algbw),
		BusBW:  metrics.Summarize(busbw),
	}, nil
}

// RunSingleAppWithSlices is RunSingleApp with the proxy's intra-step
// slice pipelining overridden (1 = one monolithic chunk per ring step).
// It is the ablation knob for the slice-pipelining design decision.
func RunSingleAppWithSlices(cfg SingleAppConfig, maxSlices int) (SingleAppResult, error) {
	return runSingleMutated(cfg, func(c *mccsd.Config) {
		c.Proxy.MaxSlices = maxSlices
	})
}

// RunSingleAppWithChannels is RunSingleApp with the MCCS strategy's ring
// count capped — the multi-ring (NIC striping) ablation.
func RunSingleAppWithChannels(cfg SingleAppConfig, channels int) (SingleAppResult, error) {
	return runSingleMutated(cfg, func(c *mccsd.Config) {
		c.Strategy = policy.OptimalRingStrategy(policy.RingStrategyOptions{
			MaxChannels: channels, PinRoutes: true,
		})
	})
}

// RunSingleAppWithTree is RunSingleApp with binomial-tree collectives
// enabled below treeThreshold output bytes — the tree-vs-ring ablation.
func RunSingleAppWithTree(cfg SingleAppConfig, treeThreshold int64) (SingleAppResult, error) {
	return runSingleMutated(cfg, func(c *mccsd.Config) {
		c.Strategy = policy.OptimalRingStrategy(policy.RingStrategyOptions{
			PinRoutes: true, TreeThreshold: treeThreshold,
		})
	})
}

// RunSingleAppWithStrategy is RunSingleApp with every communicator pinned
// to an explicit strategy — the harness hook the tuner's golden tests use
// to measure each candidate exactly as the model scored it.
func RunSingleAppWithStrategy(cfg SingleAppConfig, st spec.Strategy) (SingleAppResult, error) {
	return runSingleMutated(cfg, func(c *mccsd.Config) {
		c.Strategy = func(*topo.Cluster, *spec.CommInfo) spec.Strategy {
			return st.Clone()
		}
	})
}

func runSingleMutated(cfg SingleAppConfig, mutate func(*mccsd.Config)) (SingleAppResult, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	var algbw []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		tcfg := cfg
		if trial > 0 {
			tcfg.TracePath = ""
			tcfg.TelemetryPath = ""
			tcfg.DoctorPath = ""
		}
		vals, err := runSingleTrialMutated(tcfg, cfg.Seed+uint64(trial)*0x9e3779b97f4a7c15, mutate)
		if err != nil {
			return SingleAppResult{}, err
		}
		algbw = append(algbw, vals...)
	}
	factor := collective.BusBWFactor(cfg.Op, cfg.NumGPUs)
	busbw := make([]float64, len(algbw))
	for i, v := range algbw {
		busbw[i] = v * factor
	}
	return SingleAppResult{
		Config: cfg,
		AlgBW:  metrics.Summarize(algbw),
		BusBW:  metrics.Summarize(busbw),
	}, nil
}

func runSingleTrial(cfg SingleAppConfig, salt uint64) ([]float64, error) {
	return runSingleTrialMutated(cfg, salt, nil)
}

func runSingleTrialMutated(cfg SingleAppConfig, salt uint64, mutate func(*mccsd.Config)) ([]float64, error) {
	traceCap := 0
	if cfg.TracePath != "" || cfg.DoctorPath != "" {
		traceCap = trace.DefaultCapacity
	}
	telemetryEvery := time.Duration(0)
	if cfg.TelemetryPath != "" {
		telemetryEvery = cfg.TelemetryEvery
		if telemetryEvery <= 0 {
			telemetryEvery = telemetry.DefaultInterval
		}
	}
	env, err := newTestbedEnvFull(cfg.System, salt, mutate, traceCap, telemetryEvery)
	if err != nil {
		return nil, err
	}
	var doctor *diagnosis.Engine
	if cfg.DoctorPath != "" {
		if doctor, err = AttachDoctor(env.S); err != nil {
			return nil, err
		}
	}
	gpus, err := SingleAppGPUs(env.Cluster, cfg.NumGPUs)
	if err != nil {
		return nil, err
	}
	n := len(gpus)
	count := cfg.Bytes / 4
	perRank := count
	if cfg.Op == collective.AllGather {
		perRank = count / int64(n)
		if perRank < 1 {
			return nil, fmt.Errorf("harness: %d bytes too small for %d-rank AllGather", cfg.Bytes, n)
		}
	}
	var algbw []float64
	errs := make([]error, n)

	// Autotune: every rank checks in after communicator setup, the
	// controller scores and installs the winning strategy while the
	// datapath is idle, then the measured loops are released.
	var ctrl *policy.Controller
	var ready *sim.Latch
	tuned := &sim.Event{}
	var tuneErr error
	if cfg.Autotune {
		if env.Deployment.Config().Baseline {
			return nil, fmt.Errorf("harness: autotune requires a service-mode system")
		}
		ctrl = policy.NewController(env.Deployment)
		ready = sim.NewLatch(n)
		env.S.Go("tuner", func(p *sim.Proc) {
			ready.Wait(p)
			view := env.Deployment.View()
			if len(view) == 0 {
				tuneErr = fmt.Errorf("harness: no communicator to autotune")
			} else if _, err := ctrl.Autotune(p, view[0].ID, policy.AutotuneOptions{
				Op: cfg.Op, Bytes: cfg.Bytes,
			}); err != nil {
				tuneErr = err
			}
			tuned.Signal(env.S)
		})
	}

	for rank, gpu := range gpus {
		rank, gpu := rank, gpu
		host := env.Cluster.HostOfGPU(gpu)
		env.S.Go(fmt.Sprintf("app:rank%d", rank), func(p *sim.Proc) {
			f := env.Deployment.Service(host).Frontend("bench")
			var send, recv *gpusim.Buffer
			var err error
			if cfg.Op == collective.AllGather {
				if send, err = f.MemAlloc(p, gpu, perRank*4, false); err != nil {
					errs[rank] = err
					return
				}
				if recv, err = f.MemAlloc(p, gpu, perRank*4*int64(n), false); err != nil {
					errs[rank] = err
					return
				}
			} else {
				if recv, err = f.MemAlloc(p, gpu, perRank*4, false); err != nil {
					errs[rank] = err
					return
				}
			}
			comm, err := f.CommInitRank(p, "bench", n, rank, gpu)
			if err != nil {
				errs[rank] = err
				return
			}
			if cfg.Autotune {
				ready.Done(env.S)
				tuned.Wait(p)
				if tuneErr != nil {
					return
				}
			}
			issue := func() (*mccsd.OpHandle, error) {
				switch cfg.Op {
				case collective.AllGather:
					return comm.AllGather(p, send, recv, perRank, nil)
				case collective.AllReduce:
					return comm.AllReduce(p, nil, recv, perRank, nil)
				default:
					return nil, fmt.Errorf("harness: unsupported single-app op %v", cfg.Op)
				}
			}
			done, err := pipelinedLoop(p, issue, cfg.Warmup+cfg.Iters, cfg.Pipeline)
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				algbw = append(algbw, gapBandwidth(done, cfg.Bytes, cfg.Warmup)...)
				if ctrl != nil {
					if _, err := ctrl.ObserveAchieved(comm.ID(), 0); err != nil {
						errs[rank] = err
					}
				}
			}
		})
	}
	if err := env.S.Run(); err != nil {
		return nil, err
	}
	if tuneErr != nil {
		return nil, tuneErr
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if cfg.TracePath != "" {
		if err := WriteTraceFile(cfg.TracePath, env.S, env.Fabric); err != nil {
			return nil, err
		}
	}
	if cfg.TelemetryPath != "" {
		if err := WriteTelemetryFile(cfg.TelemetryPath, env.Telemetry); err != nil {
			return nil, err
		}
	}
	if cfg.DoctorPath != "" {
		if err := WriteDoctorFile(cfg.DoctorPath, doctor, env.Fabric); err != nil {
			return nil, err
		}
	}
	return algbw, nil
}

// pipelinedLoop issues total collectives keeping up to depth in flight
// (nccl-tests style) and returns each op's tenant-observed completion time.
func pipelinedLoop(p *sim.Proc, issue func() (*mccsd.OpHandle, error), total, depth int) ([]sim.Time, error) {
	if depth <= 0 {
		depth = 1
	}
	var pending []*mccsd.OpHandle
	done := make([]sim.Time, 0, total)
	for it := 0; it < total; it++ {
		h, err := issue()
		if err != nil {
			return nil, err
		}
		pending = append(pending, h)
		if len(pending) >= depth {
			done = append(done, pending[0].Wait(p).Done)
			pending = pending[1:]
		}
	}
	for _, h := range pending {
		done = append(done, h.Wait(p).Done)
	}
	return done, nil
}

// gapBandwidth converts completion timestamps into steady-state algorithm
// bandwidth samples: outputBytes divided by the gap between consecutive
// completions, skipping warmup iterations.
func gapBandwidth(done []sim.Time, outputBytes int64, warmup int) []float64 {
	var out []float64
	for i := warmup + 1; i < len(done); i++ {
		gap := done[i].Sub(done[i-1])
		if gap <= 0 {
			continue
		}
		out = append(out, collective.AlgBW(outputBytes, gap))
	}
	return out
}

var _ = spec.RouteECMP // referenced by sibling files
