package harness

import (
	"testing"
	"time"

	"mccs/internal/collective"
	"mccs/internal/ncclsim"
	"mccs/internal/spec"
)

func runSingle(t *testing.T, sys ncclsim.System, op collective.Op, bytes int64, gpus int) SingleAppResult {
	t.Helper()
	res, err := RunSingleApp(SingleAppConfig{
		System: sys, Op: op, Bytes: bytes, NumGPUs: gpus, Warmup: 2, Iters: 4, Trials: 6,
	})
	if err != nil {
		t.Fatalf("%v %v %d: %v", sys, op, bytes, err)
	}
	return res
}

func TestFig6LargeMessageOrdering(t *testing.T) {
	// 512 MB AllReduce on 8 GPUs: NCCL (zigzag rings + ECMP) must lose
	// to NCCL(OR) (optimal rings), and full MCCS (optimal rings + flow
	// assignment) must beat both in expectation over ECMP draws;
	// MCCS(-FA) sits near NCCL(OR).
	const size = 512 << 20
	nccl := runSingle(t, ncclsim.NCCL, collective.AllReduce, size, 8).AlgBW.Mean
	or := runSingle(t, ncclsim.NCCLOR, collective.AllReduce, size, 8).AlgBW.Mean
	noFA := runSingle(t, ncclsim.MCCSNoFA, collective.AllReduce, size, 8).AlgBW.Mean
	full := runSingle(t, ncclsim.MCCS, collective.AllReduce, size, 8).AlgBW.Mean

	if or <= nccl {
		t.Errorf("NCCL(OR) %.2g <= NCCL %.2g; optimal ring should win", or, nccl)
	}
	if full < 1.1*or {
		t.Errorf("MCCS %.2g should beat NCCL(OR) %.2g by avoiding ECMP collisions", full, or)
	}
	if full < 1.5*nccl {
		t.Errorf("MCCS %.2g < 1.5x NCCL %.2g; paper reports up to 2.4x", full, nccl)
	}
	// MCCS(-FA) uses the same rings and ECMP as NCCL(OR); at 512 MB the
	// service overhead vanishes so they should be statistically close.
	ratio := noFA / or
	if ratio < 0.80 || ratio > 1.25 {
		t.Errorf("MCCS(-FA)/NCCL(OR) = %.3f at 512MB, want ~1.0", ratio)
	}
}

func TestFig6SmallMessagePenalty(t *testing.T) {
	// 512 KB: the service datapath latency makes MCCS(-FA) measurably
	// slower than NCCL(OR) (the paper reports ~51-63% lower).
	const size = 512 << 10
	or := runSingle(t, ncclsim.NCCLOR, collective.AllReduce, size, 4).AlgBW.Mean
	noFA := runSingle(t, ncclsim.MCCSNoFA, collective.AllReduce, size, 4).AlgBW.Mean
	if noFA >= or {
		t.Errorf("MCCS(-FA) %.3g >= NCCL(OR) %.3g at 512KB; datapath latency should cost", noFA, or)
	}
	// And the gap closes at 64 MB.
	const big = 64 << 20
	orBig := runSingle(t, ncclsim.NCCLOR, collective.AllReduce, big, 4).AlgBW.Mean
	noFABig := runSingle(t, ncclsim.MCCSNoFA, collective.AllReduce, big, 4).AlgBW.Mean
	if noFABig < 0.95*orBig {
		t.Errorf("MCCS(-FA) %.3g vs NCCL(OR) %.3g at 64MB: gap should close", noFABig, orBig)
	}
}

func TestFig6AllGather(t *testing.T) {
	const size = 128 << 20
	nccl := runSingle(t, ncclsim.NCCL, collective.AllGather, size, 8).AlgBW.Mean
	full := runSingle(t, ncclsim.MCCS, collective.AllGather, size, 8).AlgBW.Mean
	if full <= nccl {
		t.Errorf("MCCS AllGather %.3g <= NCCL %.3g", full, nccl)
	}
}

func TestFig7ReconfigTimeline(t *testing.T) {
	cfg := DefaultReconfigConfig()
	cfg.RunFor = 18 * time.Second
	res, err := RunReconfigShowcase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 20 {
		t.Fatalf("only %d samples", len(res.Series))
	}
	if res.Degraded >= res.Before/1.5 {
		t.Errorf("background flow degraded %.3g -> %.3g; want a big drop", res.Before, res.Degraded)
	}
	if res.Recovered < 0.9*res.Before {
		t.Errorf("reconfiguration recovered only %.3g of %.3g", res.Recovered, res.Before)
	}
}

func TestFig8Setup3FairShare(t *testing.T) {
	// Setup 3 under full MCCS: A (2 NICs/host) should get ~2x the bus
	// bandwidth of B and C (1 NIC/host each).
	env, err := NewTestbedEnv(ncclsim.MCCS)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := Setup(env.Cluster, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultiApp(MultiAppConfig{
		System: ncclsim.MCCS, Apps: apps, Bytes: 128 << 20, Warmup: 5, Iters: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.BusBW["A"].Mean
	b := res.BusBW["B"].Mean
	c := res.BusBW["C"].Mean
	if a <= 0 || b <= 0 || c <= 0 {
		t.Fatalf("zero bandwidth: A=%g B=%g C=%g", a, b, c)
	}
	// A must get substantially more than B/C (its 2 NICs/host), and the
	// median B share must sit at the max-min fair 25 Gbps. The mean A/B
	// ratio lands below the ideal 2.0 because max-min is work
	// conserving: when one of A's channels waits for the other at the
	// per-collective join, B and C soak up the slack (see
	// EXPERIMENTS.md).
	if ra := a / b; ra < 1.35 || ra > 2.4 {
		t.Errorf("A/B = %.2f, want in [1.35, 2.4] (~2 ideal)", ra)
	}
	if rbc := b / c; rbc < 0.95 || rbc > 1.05 {
		t.Errorf("B/C = %.2f, want ~1 (symmetric tenants)", rbc)
	}
	if med := res.BusBW["B"].P50; med < 2.9e9 || med > 3.4e9 {
		t.Errorf("B median busbw = %.3g, want ~3.125e9 (25 Gbps fair share)", med)
	}
}

func TestFig8MCCSBeatsNCCLAggregate(t *testing.T) {
	for _, setup := range []int{1, 2} {
		env, err := NewTestbedEnv(ncclsim.NCCL)
		if err != nil {
			t.Fatal(err)
		}
		apps, err := Setup(env.Cluster, setup)
		if err != nil {
			t.Fatal(err)
		}
		run := func(sys ncclsim.System) MultiAppResult {
			res, err := RunMultiApp(MultiAppConfig{
				System: sys, Apps: apps, Bytes: 128 << 20, Warmup: 2, Iters: 6,
			})
			if err != nil {
				t.Fatalf("setup %d %v: %v", setup, sys, err)
			}
			return res
		}
		nccl := run(ncclsim.NCCL)
		mccs := run(ncclsim.MCCS)
		if mccs.Aggregate <= nccl.Aggregate {
			t.Errorf("setup %d: MCCS aggregate %.3g <= NCCL %.3g", setup, mccs.Aggregate, nccl.Aggregate)
		}
	}
}

func TestSetupsWellFormed(t *testing.T) {
	env, err := NewTestbedEnv(ncclsim.MCCS)
	if err != nil {
		t.Fatal(err)
	}
	seenGPUs := make(map[int]map[int]bool)
	for s := 1; s <= 4; s++ {
		apps, err := Setup(env.Cluster, s)
		if err != nil {
			t.Fatal(err)
		}
		seenGPUs[s] = make(map[int]bool)
		for _, a := range apps {
			for _, g := range a.GPUs {
				if seenGPUs[s][int(g)] {
					t.Errorf("setup %d: GPU %d assigned twice", s, g)
				}
				seenGPUs[s][int(g)] = true
			}
		}
	}
	if _, err := Setup(env.Cluster, 9); err == nil {
		t.Error("unknown setup accepted")
	}
	// Interleaved hosts alternate racks.
	hosts := InterleavedHosts(env.Cluster)
	if len(hosts) != 4 {
		t.Fatalf("hosts = %v", hosts)
	}
	if env.Cluster.RackOf(hosts[0]) == env.Cluster.RackOf(hosts[1]) {
		t.Errorf("interleaved hosts %v do not alternate racks", hosts)
	}
	if _, err := SingleAppGPUs(env.Cluster, 3); err == nil {
		t.Error("non-divisible GPU count accepted")
	}
	if _, err := SingleAppGPUs(env.Cluster, 16); err == nil {
		t.Error("over-capacity GPU count accepted")
	}
	_ = spec.RouteECMP
}
