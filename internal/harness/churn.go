package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"mccs/internal/collective"
	"mccs/internal/diagnosis"
	"mccs/internal/ncclsim"
	"mccs/internal/orchestrator"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/telemetry"
	"mccs/internal/topo"
	"mccs/internal/trace"
	"mccs/internal/workload"
)

// This file drives the tenant-churn experiment: a seeded Poisson-ish
// arrival stream of training jobs over the Fig. 6 testbed, run through
// the lifecycle orchestrator (admission, quota, locality-aware
// placement, teardown, churn-triggered reconfiguration). The headline
// numbers are per-job JCT and queueing delay, cluster GPU utilization,
// and how many policy recomputes churn triggered.

// ChurnConfig parameterizes one churn run.
type ChurnConfig struct {
	System ncclsim.System
	// Seed drives the arrival stream: same seed, same binary => the
	// same job mix, placements, and byte-identical report.
	Seed uint64
	// Jobs is how many jobs to generate (default 8).
	Jobs int
	// MeanGap is the mean exponential inter-arrival gap (default 30ms).
	MeanGap time.Duration
	// Reconfigure re-pins FFA routes on every churn event (default on
	// via DefaultChurnConfig).
	Reconfigure bool
	// Autotune additionally re-plans each surviving communicator's
	// strategy on churn.
	Autotune bool
	// AutotuneMaxChannels caps the tuner search (0 = tuner default).
	AutotuneMaxChannels int
	// Placer overrides the placement policy (nil = BinPack).
	Placer orchestrator.Placer
	// Quota caps tenants' concurrent GPUs (nil = uncapped).
	Quota map[spec.AppID]int
	// TracePath records the run (KindSched spans included) as Chrome
	// trace-event JSON.
	TracePath string
	// TelemetryPath samples the metrics registry (mccs_sched_* series
	// included) and writes JSONL (".prom" for Prometheus text).
	TelemetryPath  string
	TelemetryEvery time.Duration
	// DoctorPath, when set, attaches the online diagnosis engine for the
	// run and writes its health report there (incident JSONL when the
	// path ends in ".jsonl", text timeline otherwise). Admission-queue
	// waits and churn-triggered reconfigurations show up as incidents.
	// Implies trace recording.
	DoctorPath string
}

// DefaultChurnConfig is the mccs-churn CLI default: 8 jobs over the
// MCCS service with churn-triggered FFA reconfiguration on.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		System:      ncclsim.MCCS,
		Seed:        1,
		Jobs:        8,
		MeanGap:     30 * time.Millisecond,
		Reconfigure: true,
	}
}

// ChurnResult reports one churn run.
type ChurnResult struct {
	Config ChurnConfig
	// Jobs is every generated job in submission order, with lifecycle
	// timestamps, placement and workload results filled in.
	Jobs []*orchestrator.Job
	// Reconfigs is how many churn-triggered policy recomputes ran.
	Reconfigs int
	// Utilization is busy-GPU-seconds over cluster GPU-seconds across
	// the run.
	Utilization float64
	// Makespan is the virtual time at which the last job finished.
	Makespan time.Duration
	// Telemetry is the sampled metrics series when TelemetryPath or
	// TelemetryEvery was set (mccs-top -live -scenario churn reads it).
	Telemetry *telemetry.Series
}

// splitmix64 is the deterministic PRNG behind the arrival stream (same
// generator family as the chaos harness, independent constants).
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 in (0, 1].
func (r *splitmix64) uniform() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// expGap draws an exponential inter-arrival gap with the given mean.
func (r *splitmix64) expGap(mean time.Duration) time.Duration {
	return time.Duration(-float64(mean) * math.Log(r.uniform()))
}

// churnTraces are the job templates of the arrival mix: the paper's
// workload shapes (bucketed data-parallel, chatty tensor-parallel,
// compute-heavy vision) scaled to megabyte collectives and millisecond
// compute so a many-job churn run stays cheap to simulate.
func churnTraces() []workload.Trace {
	mini := func(name string, compute time.Duration, bytes int64, buckets int, overlap bool) workload.Trace {
		t := workload.Trace{Name: name}
		per := compute / time.Duration(buckets+1)
		for b := 0; b < buckets; b++ {
			t.Phases = append(t.Phases, workload.Phase{Kind: workload.Compute, Duration: per})
			t.Phases = append(t.Phases, workload.Phase{
				Kind: workload.Collective, Op: collective.AllReduce,
				Bytes: bytes / int64(buckets), Overlap: overlap,
			})
		}
		t.Phases = append(t.Phases, workload.Phase{Kind: workload.Compute, Duration: per})
		return t
	}
	return []workload.Trace{
		mini("vgg-mini", 4*time.Millisecond, 32<<20, 4, true),
		mini("gpt-mini", 2*time.Millisecond, 16<<20, 8, false),
		mini("resnet-mini", 6*time.Millisecond, 8<<20, 1, false),
	}
}

// churnTenants is the tenant mix; quotas key off these IDs.
var churnTenants = []spec.AppID{"tenant-a", "tenant-b", "tenant-c", "tenant-d"}

// GenerateChurnJobs draws the deterministic job stream for a seed:
// exponential arrival gaps, GPU demands from {2, 4, 8}, a trace and
// priority per job. Exposed so tests can pin the schedule golden.
func GenerateChurnJobs(seed uint64, n int, meanGap time.Duration) []orchestrator.JobSpec {
	rng := &splitmix64{state: seed ^ 0xd1b54a32d192ed03}
	traces := churnTraces()
	sizes := []int{2, 2, 4, 4, 8}
	var arrival time.Duration
	specs := make([]orchestrator.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		arrival += rng.expGap(meanGap)
		specs = append(specs, orchestrator.JobSpec{
			Tenant:     churnTenants[rng.intn(len(churnTenants))],
			GPUs:       sizes[rng.intn(len(sizes))],
			Priority:   rng.intn(2),
			Arrival:    arrival,
			Trace:      traces[rng.intn(len(traces))],
			Iterations: 2 + rng.intn(3),
		})
	}
	return specs
}

// RunChurn executes one churn experiment end to end.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 8
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 30 * time.Millisecond
	}
	traceCap := 0
	if cfg.TracePath != "" || cfg.DoctorPath != "" {
		traceCap = trace.DefaultCapacity
	}
	telemetryEvery := cfg.TelemetryEvery
	if telemetryEvery <= 0 && cfg.TelemetryPath != "" {
		telemetryEvery = telemetry.DefaultInterval
	}
	if (cfg.Reconfigure || cfg.Autotune) && ncclsim.Config(cfg.System).Baseline {
		return nil, fmt.Errorf("harness: churn reconfiguration requires a service-mode system")
	}
	env, err := newTestbedEnvFull(cfg.System, cfg.Seed, nil, traceCap, telemetryEvery)
	if err != nil {
		return nil, err
	}
	var doctor *diagnosis.Engine
	if cfg.DoctorPath != "" {
		if doctor, err = AttachDoctor(env.S); err != nil {
			return nil, err
		}
	}
	orch := orchestrator.New(env.S, env.Cluster, env.Deployment, orchestrator.Config{
		Quota:               cfg.Quota,
		Placer:              cfg.Placer,
		Reconfigure:         cfg.Reconfigure,
		Autotune:            cfg.Autotune,
		AutotuneMaxChannels: cfg.AutotuneMaxChannels,
	})
	for _, js := range GenerateChurnJobs(cfg.Seed, cfg.Jobs, cfg.MeanGap) {
		orch.Submit(js)
	}
	if err := env.S.Run(); err != nil {
		return nil, err
	}
	if err := orch.Err(); err != nil {
		return nil, err
	}
	// Zero-leak invariant: after the stream drains, every finished job
	// must have returned its capacity and left no engine or fabric state.
	if free, total := orch.FreeGPUs(), len(env.Cluster.GPUs); free != total {
		return nil, fmt.Errorf("harness: churn leaked GPUs: %d free of %d", free, total)
	}
	if q := orch.QueueLen(); q != 0 {
		return nil, fmt.Errorf("harness: %d jobs still queued after drain", q)
	}
	if v := env.Deployment.View(); len(v) != 0 {
		return nil, fmt.Errorf("harness: %d communicators leaked after teardown", len(v))
	}
	if n := env.Fabric.ManagedFlows(); n != 0 {
		return nil, fmt.Errorf("harness: %d managed flows leaked after drain", n)
	}
	if err := env.Deployment.CheckQuiescent(); err != nil {
		return nil, fmt.Errorf("harness: churn not quiescent: %w", err)
	}
	if cfg.TracePath != "" {
		if err := WriteTraceFile(cfg.TracePath, env.S, env.Fabric); err != nil {
			return nil, err
		}
	}
	if cfg.TelemetryPath != "" {
		if err := WriteTelemetryFile(cfg.TelemetryPath, env.Telemetry); err != nil {
			return nil, err
		}
	}
	if cfg.DoctorPath != "" {
		if err := WriteDoctorFile(cfg.DoctorPath, doctor, env.Fabric); err != nil {
			return nil, err
		}
	}
	res := &ChurnResult{
		Config:      cfg,
		Jobs:        orch.Jobs(),
		Reconfigs:   orch.Reconfigs(),
		Utilization: orch.Utilization(),
	}
	if env.Telemetry != nil {
		res.Telemetry = telemetry.SeriesOf(env.Telemetry)
	}
	var last sim.Time
	for _, j := range res.Jobs {
		if j.Finished > last {
			last = j.Finished
		}
	}
	res.Makespan = time.Duration(last)
	return res, nil
}

// FormatChurnTable renders the deterministic per-job report the CLI
// prints and the determinism tests byte-compare.
func FormatChurnTable(res *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "JOB  TENANT    GPUS PRIO STATE     LOCALITY    ARRIVAL      QUEUE        JCT  ITERS  PLACEMENT\n")
	jobs := append([]*orchestrator.Job(nil), res.Jobs...)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	for _, j := range jobs {
		loc, qd, jct, iters, placement := "-", "-", "-", "-", "-"
		switch j.State {
		case orchestrator.StateDone, orchestrator.StateFailed, orchestrator.StateRunning:
			loc = j.Locality.String()
			qd = ms(j.QueueDelay())
			placement = gpuList(j.Placement)
			if j.Result != nil {
				iters = fmt.Sprintf("%d", len(j.Result.IterTimes))
			}
			if j.State != orchestrator.StateRunning {
				jct = ms(j.JCT())
			}
		}
		fmt.Fprintf(&b, "%3d  %-9s %4d %4d %-9s %-11s %9s  %9s  %9s  %5s  %s\n",
			j.ID, j.Spec.Tenant, j.Spec.GPUs, j.Spec.Priority, j.State, loc,
			ms(time.Duration(j.Arrived)), qd, jct, iters, placement)
		if j.State == orchestrator.StateRejected {
			fmt.Fprintf(&b, "     rejected: %s\n", j.Reason)
		}
	}
	fmt.Fprintf(&b, "\nmakespan        %s\n", ms(res.Makespan))
	fmt.Fprintf(&b, "reconfigs       %d\n", res.Reconfigs)
	fmt.Fprintf(&b, "gpu utilization %5.1f%%\n", res.Utilization*100)
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

func gpuList(gpus []topo.GPUID) string {
	parts := make([]string, len(gpus))
	for i, g := range gpus {
		parts[i] = fmt.Sprintf("g%d", g)
	}
	return strings.Join(parts, ",")
}
