package harness

import (
	"fmt"
	"sort"
	"time"

	"mccs/internal/collective"
	"mccs/internal/mccsd"
	"mccs/internal/metrics"
	"mccs/internal/ncclsim"
	"mccs/internal/policy"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/telemetry"
	"mccs/internal/topo"
)

// AppPlacement assigns an application's ranks to GPUs (in user-rank
// order).
type AppPlacement struct {
	Name spec.AppID
	GPUs []topo.GPUID
}

// Setup builds one of the paper's Fig. 5b multi-application placements on
// a testbed cluster. The figure is not machine-readable; these placements
// reconstruct it from the constraints the evaluation text states: in
// setups 1, 2 and 4 every app uses one NIC per occupied host; in setup 3
// app A uses both GPUs/NICs of its hosts while B and C use one each
// (giving the 2:1:1 fair share the text checks).
func Setup(c *topo.Cluster, n int) ([]AppPlacement, error) {
	hosts := InterleavedHosts(c) // rack-interleaved user ordering
	g := func(h topo.HostID, idx int) topo.GPUID { return c.Hosts[h].GPUs[idx] }
	switch n {
	case 1:
		// Two 4-GPU apps, one GPU per host each.
		return []AppPlacement{
			{Name: "A", GPUs: []topo.GPUID{g(hosts[0], 0), g(hosts[1], 0), g(hosts[2], 0), g(hosts[3], 0)}},
			{Name: "B", GPUs: []topo.GPUID{g(hosts[0], 1), g(hosts[1], 1), g(hosts[2], 1), g(hosts[3], 1)}},
		}, nil
	case 2:
		// One 4-GPU app plus two 2-GPU apps, all cross-rack.
		return []AppPlacement{
			{Name: "A", GPUs: []topo.GPUID{g(hosts[0], 0), g(hosts[1], 0), g(hosts[2], 0), g(hosts[3], 0)}},
			{Name: "B", GPUs: []topo.GPUID{g(hosts[0], 1), g(hosts[1], 1)}},
			{Name: "C", GPUs: []topo.GPUID{g(hosts[2], 1), g(hosts[3], 1)}},
		}, nil
	case 3:
		// A: both GPUs (and NICs) of one host per rack; B, C: one GPU on
		// each of the remaining hosts. A's fair share is 2x B's and C's.
		h0, h1 := topo.HostID(0), topo.HostID(1) // rack 0
		h2, h3 := topo.HostID(2), topo.HostID(3) // rack 1
		return []AppPlacement{
			{Name: "A", GPUs: []topo.GPUID{g(h0, 0), g(h0, 1), g(h2, 0), g(h2, 1)}},
			{Name: "B", GPUs: []topo.GPUID{g(h1, 0), g(h3, 0)}},
			{Name: "C", GPUs: []topo.GPUID{g(h1, 1), g(h3, 1)}},
		}, nil
	case 4:
		// Two 2-GPU apps sharing one cross-rack host pair.
		h0, h2 := topo.HostID(0), topo.HostID(2)
		return []AppPlacement{
			{Name: "A", GPUs: []topo.GPUID{g(h0, 0), g(h2, 0)}},
			{Name: "B", GPUs: []topo.GPUID{g(h0, 1), g(h2, 1)}},
		}, nil
	default:
		return nil, fmt.Errorf("harness: unknown setup %d", n)
	}
}

// MultiAppConfig parameterizes a Fig. 8 run.
type MultiAppConfig struct {
	System ncclsim.System
	Apps   []AppPlacement
	Bytes  int64
	Warmup int
	Iters  int
	// Trials repeats the experiment with different ECMP label salts,
	// pooling samples (ECMP variance is the whole point of Fig. 8's
	// error bars). Defaults to 1.
	Trials int
	Seed   uint64
	// Pipeline keeps this many collectives in flight per app (see
	// SingleAppConfig.Pipeline). Defaults to 2.
	Pipeline int
	// Priorities optionally assigns app priorities before comm creation
	// (used by the QoS experiments that reuse this driver).
	Priorities map[spec.AppID]int
	// TelemetryPath, when set, samples the metrics registry during the
	// first trial and writes the series there (JSONL by default, ".prom"
	// selects Prometheus text). Later trials run uninstrumented.
	TelemetryPath string
	// TelemetryEvery overrides the sampling interval
	// (telemetry.DefaultInterval when zero).
	TelemetryEvery time.Duration
	// Autotune runs the strategy autotuner over every communicator
	// (in ID order) before the measured loops start, instead of /
	// in addition to FFA. Service-mode systems only.
	Autotune bool
}

// MultiAppResult reports the per-application bus bandwidth.
type MultiAppResult struct {
	BusBW map[spec.AppID]metrics.Summary
	// Aggregate is the summed mean bus bandwidth (the overall network
	// utilization indicator the paper discusses).
	Aggregate float64
}

// RunMultiApp runs all applications concurrently, each looping 128 MB
// (or cfg.Bytes) AllReduces, with the controller applying FFA for the
// full-MCCS system once all communicators exist. Samples pool across
// Trials ECMP-salt trials.
func RunMultiApp(cfg MultiAppConfig) (MultiAppResult, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Pipeline <= 0 {
		// Keep each app's flows continuous (nccl-tests enqueues timed
		// iterations back-to-back), so contention measurements see the
		// steady state rather than iteration-boundary slack.
		cfg.Pipeline = 2
	}
	pooled := make(map[spec.AppID][]float64, len(cfg.Apps))
	for trial := 0; trial < cfg.Trials; trial++ {
		tcfg := cfg
		if trial > 0 {
			tcfg.TelemetryPath = ""
		}
		vals, err := runMultiTrial(tcfg, cfg.Seed+uint64(trial)*0x9e3779b97f4a7c15)
		if err != nil {
			return MultiAppResult{}, err
		}
		for app, v := range vals {
			pooled[app] = append(pooled[app], v...)
		}
	}
	res := MultiAppResult{BusBW: make(map[spec.AppID]metrics.Summary, len(cfg.Apps))}
	for _, a := range cfg.Apps {
		factor := collective.BusBWFactor(collective.AllReduce, len(a.GPUs))
		vals := pooled[a.Name]
		bus := make([]float64, len(vals))
		for i, v := range vals {
			bus[i] = v * factor
		}
		sum := metrics.Summarize(bus)
		res.BusBW[a.Name] = sum
		res.Aggregate += sum.Mean
	}
	return res, nil
}

func runMultiTrial(cfg MultiAppConfig, salt uint64) (map[spec.AppID][]float64, error) {
	telemetryEvery := time.Duration(0)
	if cfg.TelemetryPath != "" {
		telemetryEvery = cfg.TelemetryEvery
		if telemetryEvery <= 0 {
			telemetryEvery = telemetry.DefaultInterval
		}
	}
	env, err := newTestbedEnvFull(cfg.System, salt, nil, 0, telemetryEvery)
	if err != nil {
		return nil, err
	}
	for app, prio := range cfg.Priorities {
		env.Deployment.SetPriority(app, prio)
	}
	ctrl := policy.NewController(env.Deployment)

	type appState struct {
		algbw []float64
	}
	states := make(map[spec.AppID]*appState, len(cfg.Apps))
	totalRanks := 0
	for _, a := range cfg.Apps {
		states[a.Name] = &appState{}
		totalRanks += len(a.GPUs)
	}
	inited := sim.NewLatch(totalRanks)
	start := &sim.Event{}
	var errs []error

	// Controller: wait for every communicator, apply FFA if this is full
	// MCCS, then release the measured loops.
	env.S.Go("controller", func(p *sim.Proc) {
		inited.Wait(p)
		// Autotune picks each communicator's shape (order, channels,
		// algorithm) in isolation; FFA then coordinates route pins
		// *across* tenants, which no per-communicator search can see.
		if cfg.Autotune && !env.Deployment.Config().Baseline {
			view := env.Deployment.View()
			sort.Slice(view, func(i, j int) bool { return view[i].ID < view[j].ID })
			for _, ci := range view {
				if _, err := ctrl.Autotune(p, ci.ID, policy.AutotuneOptions{
					Op: collective.AllReduce, Bytes: cfg.Bytes,
				}); err != nil {
					errs = append(errs, err)
				}
			}
		}
		if cfg.System == ncclsim.MCCS {
			if err := ctrl.ApplyFFA(); err != nil {
				errs = append(errs, err)
			}
		}
		start.Signal(env.S)
	})

	for _, app := range cfg.Apps {
		app := app
		n := len(app.GPUs)
		count := cfg.Bytes / 4
		for rank, gpu := range app.GPUs {
			rank, gpu := rank, gpu
			host := env.Cluster.HostOfGPU(gpu)
			env.S.Go(fmt.Sprintf("%s:rank%d", app.Name, rank), func(p *sim.Proc) {
				f := env.Deployment.Service(host).Frontend(app.Name)
				buf, err := f.MemAlloc(p, gpu, count*4, false)
				if err != nil {
					errs = append(errs, err)
					inited.Done(env.S)
					return
				}
				comm, err := f.CommInitRank(p, string(app.Name), n, rank, gpu)
				if err != nil {
					errs = append(errs, err)
					inited.Done(env.S)
					return
				}
				inited.Done(env.S)
				start.Wait(p)
				done, err := pipelinedLoop(p, func() (*mccsd.OpHandle, error) {
					return comm.AllReduce(p, nil, buf, count, nil)
				}, cfg.Warmup+cfg.Iters, cfg.Pipeline)
				if err != nil {
					errs = append(errs, err)
					return
				}
				if rank == 0 {
					states[app.Name].algbw = gapBandwidth(done, cfg.Bytes, cfg.Warmup)
				}
			})
		}
	}
	if err := env.S.Run(); err != nil {
		return nil, err
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}
	if cfg.TelemetryPath != "" {
		if err := WriteTelemetryFile(cfg.TelemetryPath, env.Telemetry); err != nil {
			return nil, err
		}
	}
	out := make(map[spec.AppID][]float64, len(cfg.Apps))
	for _, a := range cfg.Apps {
		out[a.Name] = states[a.Name].algbw
	}
	return out, nil
}

var _ = mccsd.DefaultConfig
