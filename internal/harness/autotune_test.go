package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mccs/internal/collective"
	"mccs/internal/ncclsim"
)

// The acceptance scenario: on the Fig. 6 cross-rack setup, the autotuned
// strategy must match or beat the best hand-tuned configuration (full
// MCCS: locality rings, one per path, pinned).
func TestAutotuneMatchesOrBeatsHandTuned(t *testing.T) {
	const size = 64 << 20
	base := SingleAppConfig{
		System: ncclsim.MCCS, Op: collective.AllReduce, Bytes: size,
		NumGPUs: 8, Warmup: 2, Iters: 4, Trials: 4,
	}
	hand, err := RunSingleApp(base)
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Autotune = true
	auto, err := RunSingleApp(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if auto.BusBW.Mean < 0.98*hand.BusBW.Mean {
		t.Errorf("autotuned bus bandwidth %.4g < hand-tuned %.4g", auto.BusBW.Mean, hand.BusBW.Mean)
	}
	// And it must demolish the topology-oblivious baseline strategy.
	naive := base
	naive.System = ncclsim.MCCSNoFA
	nv, err := RunSingleApp(naive)
	if err != nil {
		t.Fatal(err)
	}
	if auto.BusBW.Mean < nv.BusBW.Mean {
		t.Errorf("autotuned %.4g lost to the un-pinned ablation %.4g", auto.BusBW.Mean, nv.BusBW.Mean)
	}
}

// The decision must be visible in both observability planes: the
// strategy-info gauge in the telemetry JSONL and KindTuner candidate
// spans in the trace export.
func TestAutotuneDecisionVisible(t *testing.T) {
	dir := t.TempDir()
	cfg := SingleAppConfig{
		System: ncclsim.MCCS, Op: collective.AllReduce, Bytes: 64 << 20,
		NumGPUs: 8, Warmup: 1, Iters: 3,
		Autotune:      true,
		TracePath:     filepath.Join(dir, "trace.json"),
		TelemetryPath: filepath.Join(dir, "tel.jsonl"),
	}
	if _, err := RunSingleApp(cfg); err != nil {
		t.Fatal(err)
	}
	tel, err := os.ReadFile(cfg.TelemetryPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mccs_tuner_searches_total",
		"mccs_tuner_predicted_seconds",
		"mccs_tuner_achieved_seconds",
		"mccs_tuner_strategy_info",
	} {
		if !strings.Contains(string(tel), want) {
			t.Errorf("telemetry export missing %s", want)
		}
	}
	tr, err := os.ReadFile(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), "tune:") {
		t.Error("trace export has no tuner candidate spans")
	}
	if !strings.Contains(string(tr), "tune:ring/locality") {
		t.Error("trace export does not name the locality candidates")
	}
}

// Same seed, autotune on: exports must be byte-identical across runs
// (the tuner adds no nondeterminism to the schedule).
func TestAutotuneDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func(name string) ([]byte, []byte) {
		cfg := SingleAppConfig{
			System: ncclsim.MCCS, Op: collective.AllReduce, Bytes: 16 << 20,
			NumGPUs: 8, Warmup: 1, Iters: 3, Seed: 7,
			Autotune:      true,
			TracePath:     filepath.Join(dir, name+".trace.json"),
			TelemetryPath: filepath.Join(dir, name+".tel.jsonl"),
		}
		if _, err := RunSingleApp(cfg); err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(cfg.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		tel, err := os.ReadFile(cfg.TelemetryPath)
		if err != nil {
			t.Fatal(err)
		}
		return tr, tel
	}
	tr1, tel1 := run("a")
	tr2, tel2 := run("b")
	if !bytes.Equal(tr1, tr2) {
		t.Error("trace exports differ between identical autotuned runs")
	}
	if !bytes.Equal(tel1, tel2) {
		t.Error("telemetry exports differ between identical autotuned runs")
	}
	if len(tr1) == 0 || len(tel1) == 0 {
		t.Error("empty export")
	}
}

// Fig. 7 with the scripted reversal replaced by the autotuner: the cost
// model reads the background flow off the fabric and the search must
// rediscover a strategy that restores the original bandwidth.
func TestFig7AutotuneRecovers(t *testing.T) {
	cfg := DefaultReconfigConfig()
	cfg.RunFor = 18 * time.Second
	cfg.Autotune = true
	res, err := RunReconfigShowcase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded >= res.Before/1.5 {
		t.Errorf("background flow degraded %.3g -> %.3g; want a big drop", res.Before, res.Degraded)
	}
	if res.Recovered < 0.9*res.Before {
		t.Errorf("autotuner recovered only %.3g of %.3g", res.Recovered, res.Before)
	}
}

// Multi-app autotune: all communicators tuned, run completes, bandwidth
// stays within the ballpark of the FFA-managed run.
func TestMultiAppAutotune(t *testing.T) {
	c, err := NewTestbedEnv(ncclsim.MCCS)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := Setup(c.Cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := MultiAppConfig{
		System: ncclsim.MCCS, Apps: apps, Bytes: 64 << 20,
		Warmup: 1, Iters: 4, Trials: 2,
	}
	plain, err := RunMultiApp(base)
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Autotune = true
	auto, err := RunMultiApp(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Aggregate < 0.9*plain.Aggregate {
		t.Errorf("autotuned aggregate %.4g well below FFA aggregate %.4g", auto.Aggregate, plain.Aggregate)
	}
}
