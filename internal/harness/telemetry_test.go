package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mccs/internal/collective"
	"mccs/internal/ncclsim"
	"mccs/internal/telemetry"
)

// shortReconfig is a scaled-down contended Fig. 7 scenario: the
// background flow saturates the clockwise inter-switch link for several
// seconds before the ring reversal routes around it.
func shortReconfig() ReconfigConfig {
	cfg := DefaultReconfigConfig()
	cfg.RunFor = 6 * time.Second
	cfg.BgStart = 1500 * time.Millisecond
	cfg.ReconfigAt = 4 * time.Second
	return cfg
}

// Two runs of the same seedless (fully deterministic) scenario must
// export byte-identical JSONL and Prometheus files.
func TestTelemetryExportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func(n int) ([]byte, []byte) {
		cfg := shortReconfig()
		cfg.TelemetryPath = filepath.Join(dir, "tel"+string(rune('0'+n))+".jsonl")
		res, err := RunReconfigShowcase(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Telemetry == nil {
			t.Fatal("no telemetry series on instrumented run")
		}
		jsonl, err := os.ReadFile(cfg.TelemetryPath)
		if err != nil {
			t.Fatal(err)
		}
		// Prometheus text from the same run, via the .prom path of the
		// file writer exercised on a second file.
		promPath := filepath.Join(dir, "tel"+string(rune('0'+n))+".prom")
		cfg2 := shortReconfig()
		cfg2.TelemetryPath = promPath
		if _, err := RunReconfigShowcase(cfg2); err != nil {
			t.Fatal(err)
		}
		prom, err := os.ReadFile(promPath)
		if err != nil {
			t.Fatal(err)
		}
		return jsonl, prom
	}
	j1, p1 := run(1)
	j2, p2 := run(2)
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL exports differ between identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("Prometheus exports differ between identical runs")
	}
	if len(j1) == 0 || len(p1) == 0 {
		t.Error("empty export")
	}
}

// The contended scenario must surface the Fig. 7 story through the SLO
// plane: the tenant is held below its entitlement on the saturated link
// while the background flow runs, and per-tenant goodput is visible in
// the transport counters.
func TestTelemetrySLOViolationsUnderContention(t *testing.T) {
	cfg := shortReconfig()
	cfg.TelemetryEvery = telemetry.DefaultInterval
	res, err := RunReconfigShowcase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := res.Telemetry
	if se == nil {
		t.Fatal("no telemetry series")
	}
	if len(se.Violations) == 0 {
		t.Fatal("contended run produced no SLO violations")
	}
	for _, v := range se.Violations {
		if v.Tenant != "job" {
			t.Errorf("violation tenant = %q, want job", v.Tenant)
		}
		if v.T.Seconds() < cfg.BgStart.Seconds() || v.T.Seconds() > cfg.ReconfigAt.Seconds()+1 {
			t.Errorf("violation at %.2fs outside the contention phase [%v, %v]",
				v.T.Seconds(), cfg.BgStart, cfg.ReconfigAt)
		}
		if v.AchievedBps >= v.EntitledBps {
			t.Errorf("violation with achieved %g >= entitled %g", v.AchievedBps, v.EntitledBps)
		}
		if v.DeficitBps != v.EntitledBps-v.AchievedBps {
			t.Errorf("deficit %g != entitled-achieved %g", v.DeficitBps, v.EntitledBps-v.AchievedBps)
		}
	}
	// Per-tenant goodput: the job's tx counters grow over the run.
	cols := se.FindCols("mccs_transport_tx_bytes_total", telemetry.L("tenant", "job"))
	if len(cols) == 0 {
		t.Fatal("no per-tenant tx byte counters")
	}
	last := se.Samples[len(se.Samples)-1]
	var total float64
	for _, c := range cols {
		total += se.Value(last, c)
	}
	if total <= 0 {
		t.Error("tenant moved no bytes")
	}
	// The reconfiguration is visible in the audit counters.
	rc := se.FindCols("mccs_proxy_reconfigs_total", telemetry.L("tenant", "job"))
	if len(rc) != 1 || se.Value(last, rc[0]) == 0 {
		t.Error("reconfiguration not recorded in proxy counters")
	}
}

// Telemetry must not perturb the schedule: the measured series of an
// instrumented run matches the uninstrumented run exactly.
func TestTelemetryScheduleNeutral(t *testing.T) {
	base := shortReconfig()
	plain, err := RunReconfigShowcase(base)
	if err != nil {
		t.Fatal(err)
	}
	inst := shortReconfig()
	inst.TelemetryEvery = 50 * time.Millisecond
	instrumented, err := RunReconfigShowcase(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Series) != len(instrumented.Series) {
		t.Fatalf("iteration counts differ: %d vs %d", len(plain.Series), len(instrumented.Series))
	}
	for i := range plain.Series {
		if plain.Series[i] != instrumented.Series[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, plain.Series[i], instrumented.Series[i])
		}
	}
}

// A single-app benchmark trial writes a readable JSONL export with
// frontend, proxy and transport instrumentation present.
func TestSingleAppTelemetryExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.jsonl")
	_, err := RunSingleApp(SingleAppConfig{
		System: ncclsim.MCCS, Op: collective.AllReduce,
		Bytes: 4 << 20, NumGPUs: 4, Warmup: 1, Iters: 3,
		TelemetryPath: path, TelemetryEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	se, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(se.Samples) == 0 {
		t.Fatal("no samples")
	}
	last := se.Samples[len(se.Samples)-1]
	for _, name := range []string{
		"mccs_frontend_cmds_total",
		"mccs_proxy_ops_total",
		"mccs_proxy_steps_total",
		"mccs_transport_tx_bytes_total",
		"mccs_fabric_flows_started_total",
		"mccs_service_comms_total",
	} {
		cols := se.FindCols(name)
		if len(cols) == 0 {
			t.Errorf("no columns for %s", name)
			continue
		}
		var total float64
		for _, c := range cols {
			total += se.Value(last, c)
		}
		if total <= 0 {
			t.Errorf("%s never incremented", name)
		}
	}
}
