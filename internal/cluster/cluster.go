// Package cluster implements the paper's large-scale simulation (§6.5):
// 768 GPUs in a 2:1-oversubscribed spine-leaf fabric, 50 data-parallel
// ResNet-50 jobs arriving as a Poisson process, placed randomly or
// compactly, running ring AllReduce under three strategies — random ring
// order, locality-optimal rings (OR), and OR with fair flow assignment
// (OR+FFA).
//
// Like the paper's own evaluation, this is a flow-level simulation (the
// paper: "Our flow-level simulator assumes per-flow fairness"): each
// AllReduce iteration becomes one flow per inter-host ring edge carrying
// that edge's share of the traffic; rings can optionally advance in
// lock-step (coflow coupling). Route decisions reuse exactly the policy
// code the MCCS service runs (policy.FFA, policy.LocalityRing).
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mccs/internal/metrics"
	"mccs/internal/netsim"
	"mccs/internal/policy"
	"mccs/internal/sim"
	"mccs/internal/spec"
	"mccs/internal/topo"
)

// Placement selects the job placement policy.
type Placement int

const (
	// PlacementRandom scatters a job over random free GPUs.
	PlacementRandom Placement = iota
	// PlacementCompact packs a job into as few racks as possible.
	PlacementCompact
)

func (p Placement) String() string {
	if p == PlacementCompact {
		return "compact"
	}
	return "random"
}

// Strategy selects the collective configuration.
type Strategy int

const (
	// StratRandomRing orders each ring randomly (the NCCL-with-
	// arbitrary-ranks baseline) and routes by ECMP.
	StratRandomRing Strategy = iota
	// StratOR uses locality-optimal rings, still routed by ECMP.
	StratOR
	// StratORFFA adds fair flow assignment, re-run whenever a job joins
	// or leaves (the paper: "rescheduling occurs only when a job joins
	// or exits").
	StratORFFA
)

var stratNames = [...]string{"RandomRing", "OR", "OR+FFA"}

func (s Strategy) String() string {
	if int(s) < len(stratNames) {
		return stratNames[s]
	}
	return "Unknown"
}

// Config parameterizes a run.
type Config struct {
	Topo        topo.ClosConfig
	NumJobs     int
	JobSizes    []int
	MeanArrival time.Duration
	Iterations  int
	ModelBytes  int64
	ComputeTime time.Duration
	Placement   Placement
	Strategy    Strategy
	Seed        int64
	// CoupleRings makes each ring's flows advance at the ring's
	// bottleneck rate (lock-step semantics). Off = plain per-flow
	// fairness, the paper's stated model. Kept as a switch for the
	// ablation benchmark.
	CoupleRings bool
	// GroupHostsInRandomRings switches the random-ring baseline from a
	// fully random rank ring (the default, the paper's literal "random
	// ring selection") to a random host chain with intra-host grouping
	// preserved.
	GroupHostsInRandomRings bool
}

// DefaultConfig reproduces the paper's §6.5 parameters.
func DefaultConfig() Config {
	return Config{
		Topo:        topo.LargeScaleConfig(),
		NumJobs:     50,
		JobSizes:    []int{16, 32},
		MeanArrival: 200 * time.Millisecond,
		Iterations:  10,
		ModelBytes:  100 << 20,
		ComputeTime: 100 * time.Millisecond,
		Placement:   PlacementRandom,
		Strategy:    StratRandomRing,
		Seed:        1,
	}
}

// JobResult reports one job.
type JobResult struct {
	ID       int
	Size     int
	Arrived  sim.Time
	Started  sim.Time
	Finished sim.Time
	// ARTimes are the per-iteration AllReduce (communication phase)
	// completion times.
	ARTimes []time.Duration
}

// MeanAR returns the job's mean AllReduce completion time.
func (j *JobResult) MeanAR() time.Duration {
	if len(j.ARTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range j.ARTimes {
		sum += d
	}
	return sum / time.Duration(len(j.ARTimes))
}

// RunResult is a full simulation outcome.
type RunResult struct {
	Config Config
	Jobs   []JobResult
}

// MeanARs returns every job's mean AllReduce time in job-ID order
// (seconds), for speedup comparisons across strategies on the same seed.
func (r *RunResult) MeanARs() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.MeanAR().Seconds()
	}
	return out
}

// Speedups divides a baseline's per-job mean AR times by this run's
// (elementwise); both runs must use the same seed so job i is identical.
func Speedups(baseline, improved *RunResult) ([]float64, error) {
	if len(baseline.Jobs) != len(improved.Jobs) {
		return nil, fmt.Errorf("cluster: job count mismatch %d vs %d", len(baseline.Jobs), len(improved.Jobs))
	}
	base := baseline.MeanARs()
	imp := improved.MeanARs()
	out := make([]float64, len(base))
	for i := range base {
		if imp[i] <= 0 {
			return nil, fmt.Errorf("cluster: job %d has zero AR time", i)
		}
		out[i] = base[i] / imp[i]
	}
	return out, nil
}

// SpeedupCDF returns the Fig. 11 CDF of per-job speedups.
func SpeedupCDF(baseline, improved *RunResult) ([]metrics.CDFPoint, float64, error) {
	sp, err := Speedups(baseline, improved)
	if err != nil {
		return nil, 0, err
	}
	return metrics.CDF(sp), metrics.Mean(sp), nil
}

// job is the in-flight state of one placed job.
type job struct {
	id    int
	size  int
	gpus  []topo.GPUID
	rings [][]int // per-ring order (rank space)
	// routes[ring][edgeKey] -> path index; nil means ECMP.
	routes map[spec.ConnKey]int
	info   spec.CommInfo // pseudo comm info for the shared policy code
}

type sim11 struct {
	cfg     Config
	s       *sim.Scheduler
	cluster *topo.Cluster
	fabric  *netsim.Fabric
	// Three independent streams keep the workload (arrivals, sizes)
	// identical across strategies even though strategies consume
	// different amounts of randomness for rings and placement order.
	arrivalRng *rand.Rand
	placeRng   *rand.Rand
	ringRng    *rand.Rand

	freeGPUs map[topo.GPUID]bool
	queue    []*pendingJob
	active   map[int]*job
	results  []JobResult
	done     *sim.Latch
}

type pendingJob struct {
	id      int
	size    int
	arrived sim.Time
}

// Run executes the simulation and returns per-job results (sorted by job
// ID).
func Run(cfg Config) (*RunResult, error) {
	if cfg.NumJobs <= 0 || cfg.Iterations <= 0 || cfg.ModelBytes <= 0 {
		return nil, fmt.Errorf("cluster: bad config %+v", cfg)
	}
	cl, err := topo.BuildClos(cfg.Topo)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	m := &sim11{
		cfg: cfg, s: s, cluster: cl,
		fabric:     netsim.NewFabric(s, cl.Net),
		arrivalRng: rand.New(rand.NewSource(cfg.Seed)),
		placeRng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		ringRng:    rand.New(rand.NewSource(cfg.Seed + 2)),
		freeGPUs:   make(map[topo.GPUID]bool),
		active:     make(map[int]*job),
		results:    make([]JobResult, cfg.NumJobs),
		done:       sim.NewLatch(cfg.NumJobs),
	}
	for g := range cl.GPUs {
		m.freeGPUs[topo.GPUID(g)] = true
	}

	// Arrival process.
	s.Go("arrivals", func(p *sim.Proc) {
		for i := 0; i < cfg.NumJobs; i++ {
			if i > 0 {
				gap := time.Duration(m.arrivalRng.ExpFloat64() * float64(cfg.MeanArrival))
				p.Sleep(gap)
			}
			size := cfg.JobSizes[m.arrivalRng.Intn(len(cfg.JobSizes))]
			m.queue = append(m.queue, &pendingJob{id: i, size: size, arrived: p.Now()})
			m.results[i] = JobResult{ID: i, Size: size, Arrived: p.Now()}
			m.tryPlace()
		}
	})

	s.Go("join", func(p *sim.Proc) {
		m.done.Wait(p)
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	return &RunResult{Config: cfg, Jobs: m.results}, nil
}

// tryPlace admits queued jobs FIFO while capacity lasts.
func (m *sim11) tryPlace() {
	for len(m.queue) > 0 {
		next := m.queue[0]
		gpus, ok := m.place(next.size)
		if !ok {
			return // head-of-line blocks; capacity frees on job exit
		}
		m.queue = m.queue[1:]
		m.start(next, gpus)
	}
}

// place allocates GPUs under the configured placement policy.
func (m *sim11) place(n int) ([]topo.GPUID, bool) {
	if len(m.freeGPUs) < n {
		return nil, false
	}
	free := make([]topo.GPUID, 0, len(m.freeGPUs))
	for g := range m.freeGPUs {
		free = append(free, g)
	}
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	var chosen []topo.GPUID
	switch m.cfg.Placement {
	case PlacementCompact:
		// Fill rack by rack, racks with the most free GPUs first (ties
		// by rack ID), hosts in order within a rack.
		byRack := make(map[topo.RackID][]topo.GPUID)
		for _, g := range free {
			r := m.cluster.RackOf(m.cluster.HostOfGPU(g))
			byRack[r] = append(byRack[r], g)
		}
		racks := make([]topo.RackID, 0, len(byRack))
		for r := range byRack {
			racks = append(racks, r)
		}
		sort.Slice(racks, func(i, j int) bool {
			a, b := racks[i], racks[j]
			if len(byRack[a]) != len(byRack[b]) {
				return len(byRack[a]) > len(byRack[b])
			}
			return a < b
		})
		for _, r := range racks {
			for _, g := range byRack[r] {
				chosen = append(chosen, g)
				if len(chosen) == n {
					return chosen, true
				}
			}
		}
		return nil, false
	default: // PlacementRandom
		m.placeRng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		return free[:n], true
	}
}

// ringCount returns the rings per job: one per NIC the job can drive per
// host, bounded by the fabric's path diversity.
func (m *sim11) ringCount(gpus []topo.GPUID) int {
	perHost := make(map[topo.HostID]int)
	for _, g := range gpus {
		perHost[m.cluster.HostOfGPU(g)]++
	}
	minPerHost := len(gpus)
	for _, c := range perHost {
		if c < minPerHost {
			minPerHost = c
		}
	}
	n := m.cfg.Topo.Spines
	if minPerHost < n {
		n = minPerHost
	}
	if n < 1 {
		n = 1
	}
	return n
}

// start spawns a placed job.
func (m *sim11) start(pj *pendingJob, gpus []topo.GPUID) {
	for _, g := range gpus {
		delete(m.freeGPUs, g)
	}
	j := &job{id: pj.id, size: pj.size, gpus: gpus}
	j.info = spec.CommInfo{ID: spec.CommID(pj.id + 1), App: spec.AppID(fmt.Sprintf("job%d", pj.id))}
	for rank, g := range gpus {
		j.info.Ranks = append(j.info.Ranks, spec.RankInfo{
			Rank: rank, GPU: g,
			Host: m.cluster.HostOfGPU(g),
			NIC:  m.cluster.NICOfGPU(g),
		})
	}
	nrings := m.ringCount(gpus)
	var base []int
	switch m.cfg.Strategy {
	case StratRandomRing:
		if m.cfg.GroupHostsInRandomRings {
			// Alternative baseline: randomize only the host ordering,
			// keeping each host's ranks contiguous (NCCL's intra-host
			// optimization preserved). Kept for the ablation bench.
			base = randomHostRing(m.ringRng, j.info.Ranks)
		} else {
			// The paper's baseline reading: a fully random rank ring.
			base = m.ringRng.Perm(len(gpus))
		}
	default:
		base = policy.LocalityRing(m.cluster, j.info.Ranks)
	}
	hosts := make([]topo.HostID, len(gpus))
	for i, ri := range j.info.Ranks {
		hosts[i] = ri.Host
	}
	j.rings = spec.StripeChannelOrders(base, hosts, nrings)
	for _, order := range j.rings {
		j.info.Strategy.Channels = append(j.info.Strategy.Channels,
			spec.ChannelSpec{Order: order, Route: spec.RouteECMP})
	}

	m.active[j.id] = j
	m.results[j.id].Started = m.s.Now()
	if m.cfg.Strategy == StratORFFA {
		m.reassignRoutes()
	}
	m.s.Go(fmt.Sprintf("job%d", j.id), func(p *sim.Proc) { m.runJob(p, j) })
}

// reassignRoutes recomputes FFA over all active jobs (invoked on every
// join and exit, as the paper describes).
func (m *sim11) reassignRoutes() {
	var infos []spec.CommInfo
	ids := make([]int, 0, len(m.active))
	for id := range m.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		infos = append(infos, m.active[id].info)
	}
	assign := policy.FFA(m.cluster, infos)
	for _, id := range ids {
		j := m.active[id]
		j.routes = assign[j.info.ID]
	}
}

// runJob executes the job's iterations.
func (m *sim11) runJob(p *sim.Proc, j *job) {
	n := len(j.gpus)
	nrings := len(j.rings)
	// Bytes per directed inter-host ring edge per iteration: each ring
	// carries 1/nrings of the model, and ring AllReduce moves
	// 2(n-1)/n of a ring's bytes over every edge.
	perEdge := float64(m.cfg.ModelBytes) / float64(nrings) * 2 * float64(n-1) / float64(n)

	for it := 0; it < m.cfg.Iterations; it++ {
		if m.cfg.ComputeTime > 0 {
			p.Sleep(m.cfg.ComputeTime)
		}
		start := p.Now()
		// All rings' flows start at one virtual instant; the fabric
		// coalesces the whole batch into a single max-min recompute at
		// the end of the instant (see DESIGN.md §10).
		var flows []*netsim.Flow
		for ri, order := range j.rings {
			var group *netsim.Group
			if m.cfg.CoupleRings {
				group = m.fabric.NewGroup()
			}
			for pos := 0; pos < n; pos++ {
				from := j.info.Ranks[order[pos]]
				to := j.info.Ranks[order[(pos+1)%n]]
				if from.Host == to.Host {
					continue
				}
				var route []netsim.LinkID
				if idx, ok := j.routes[spec.ConnKey{Channel: ri, FromRank: from.Rank, ToRank: to.Rank}]; ok {
					paths := m.cluster.PathsBetweenNICs(from.NIC, to.NIC)
					route = paths[idx%len(paths)]
				}
				flows = append(flows, m.fabric.StartFlow(netsim.FlowOpts{
					Src: m.cluster.NICNode(from.NIC), Dst: m.cluster.NICNode(to.NIC),
					Bytes: perEdge,
					Route: route,
					Label: flowLabel(uint64(m.cfg.Seed), j.id, ri, from.Rank, to.Rank),
					Group: group,
				}))
			}
		}
		for _, fl := range flows {
			fl.Done().Wait(p)
		}
		m.results[j.id].ARTimes = append(m.results[j.id].ARTimes, time.Duration(p.Now().Sub(start)))
	}
	m.results[j.id].Finished = p.Now()
	// Release resources and admit queued jobs.
	for _, g := range j.gpus {
		m.freeGPUs[g] = true
	}
	delete(m.active, j.id)
	if m.cfg.Strategy == StratORFFA {
		m.reassignRoutes()
	}
	m.tryPlace()
	m.done.Done(m.s)
}

// randomHostRing groups ranks by host and chains the hosts in random
// order.
func randomHostRing(rng *rand.Rand, ranks []spec.RankInfo) []int {
	byHost := make(map[topo.HostID][]int)
	var hosts []topo.HostID
	seen := make(map[topo.HostID]bool)
	for _, ri := range ranks {
		if !seen[ri.Host] {
			seen[ri.Host] = true
			hosts = append(hosts, ri.Host)
		}
		byHost[ri.Host] = append(byHost[ri.Host], ri.Rank)
	}
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	out := make([]int, 0, len(ranks))
	for _, h := range hosts {
		out = append(out, byHost[h]...)
	}
	return out
}

func flowLabel(seed uint64, jobID, ring, from, to int) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{seed, uint64(jobID), uint64(ring), uint64(from), uint64(to)} {
		h = (h ^ v) * 1099511628211
	}
	return h
}

// newRng is split out for tests that drive placement directly.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
