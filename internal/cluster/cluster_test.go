package cluster

import (
	"testing"
	"time"

	"mccs/internal/metrics"
	"mccs/internal/topo"
)

// smallConfig shrinks the simulation for unit tests while preserving the
// oversubscribed two-tier shape.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Topo = topo.ClosConfig{
		Spines: 4, Leaves: 6, HostsPerLeaf: 2, GPUsPerHost: 8, NICsPerHost: 8,
		NICBps: 200 * topo.Gbps, LeafSpineBps: 200 * topo.Gbps,
	}
	cfg.NumJobs = 12
	cfg.Iterations = 4
	cfg.ComputeTime = 50 * time.Millisecond
	return cfg
}

func TestRunCompletesAllJobs(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != cfg.NumJobs {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if len(j.ARTimes) != cfg.Iterations {
			t.Errorf("job %d has %d AR samples, want %d", j.ID, len(j.ARTimes), cfg.Iterations)
		}
		if j.MeanAR() <= 0 {
			t.Errorf("job %d mean AR = %v", j.ID, j.MeanAR())
		}
		if j.Finished <= j.Started || j.Started < j.Arrived {
			t.Errorf("job %d times inconsistent: %v %v %v", j.ID, j.Arrived, j.Started, j.Finished)
		}
		if j.Size != 16 && j.Size != 32 {
			t.Errorf("job %d size = %d", j.ID, j.Size)
		}
	}
}

func TestSameSeedSameWorkload(t *testing.T) {
	// Different strategies under one seed must see identical job
	// arrivals, sizes, and placements (the premise of the speedup CDF).
	a := smallConfig()
	a.Strategy = StratRandomRing
	b := smallConfig()
	b.Strategy = StratOR
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Jobs {
		if ra.Jobs[i].Size != rb.Jobs[i].Size {
			t.Fatalf("job %d size differs across strategies: %d vs %d",
				i, ra.Jobs[i].Size, rb.Jobs[i].Size)
		}
		if ra.Jobs[i].Arrived != rb.Jobs[i].Arrived {
			t.Fatalf("job %d arrival differs", i)
		}
	}
}

func TestFig11StrategyOrdering(t *testing.T) {
	// OR must beat random rings on average, and OR+FFA must beat OR
	// under random placement; under compact placement FFA adds little
	// (the paper's observation).
	for _, placement := range []Placement{PlacementRandom, PlacementCompact} {
		run := func(st Strategy) *RunResult {
			cfg := smallConfig()
			cfg.Placement = placement
			cfg.Strategy = st
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		random := run(StratRandomRing)
		or := run(StratOR)
		orffa := run(StratORFFA)

		_, orSpeed, err := SpeedupCDF(random, or)
		if err != nil {
			t.Fatal(err)
		}
		_, ffaSpeed, err := SpeedupCDF(random, orffa)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v placement: OR %.2fx, OR+FFA %.2fx vs random ring", placement, orSpeed, ffaSpeed)
		if orSpeed < 1.3 {
			t.Errorf("%v: OR speedup %.2fx, want well above 1x", placement, orSpeed)
		}
		if ffaSpeed < orSpeed*0.95 {
			t.Errorf("%v: OR+FFA %.2fx should not lose to OR %.2fx", placement, ffaSpeed, orSpeed)
		}
		if placement == PlacementRandom && ffaSpeed < orSpeed*1.02 {
			t.Errorf("random placement: OR+FFA %.2fx should exceed OR %.2fx", ffaSpeed, orSpeed)
		}
	}
}

func TestCompactPlacementSpansFewerRacks(t *testing.T) {
	racksOf := func(p Placement) float64 {
		cfg := smallConfig()
		cfg.Placement = p
		cl, err := topo.BuildClos(cfg.Topo)
		if err != nil {
			t.Fatal(err)
		}
		m := &sim11{cfg: cfg, cluster: cl, freeGPUs: make(map[topo.GPUID]bool)}
		m.placeRng = newRng(7)
		for g := range cl.GPUs {
			m.freeGPUs[topo.GPUID(g)] = true
		}
		total := 0.0
		njobs := 3 // 96 GPUs / 32 per job
		for i := 0; i < njobs; i++ {
			gpus, ok := m.place(32)
			if !ok {
				t.Fatal("placement failed")
			}
			racks := map[topo.RackID]bool{}
			for _, g := range gpus {
				racks[cl.RackOf(cl.HostOfGPU(g))] = true
				delete(m.freeGPUs, g)
			}
			total += float64(len(racks))
		}
		return total / float64(njobs)
	}
	compact := racksOf(PlacementCompact)
	random := racksOf(PlacementRandom)
	if compact >= random {
		t.Errorf("compact spans %.1f racks vs random %.1f; want fewer", compact, random)
	}
	if compact > 2.01 {
		t.Errorf("compact 32-GPU jobs span %.1f racks, want ~2 (16 GPUs/rack)", compact)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumJobs = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero jobs accepted")
	}
	bad2 := DefaultConfig()
	bad2.ModelBytes = 0
	if _, err := Run(bad2); err == nil {
		t.Error("zero model accepted")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	a := &RunResult{Jobs: []JobResult{{ARTimes: []time.Duration{2 * time.Second}}}}
	b := &RunResult{Jobs: []JobResult{{ARTimes: []time.Duration{time.Second}}}}
	sp, err := Speedups(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 1 || sp[0] != 2 {
		t.Errorf("speedups = %v", sp)
	}
	if _, err := Speedups(a, &RunResult{}); err == nil {
		t.Error("mismatched job counts accepted")
	}
	cdf, mean, err := SpeedupCDF(a, b)
	if err != nil || mean != 2 || len(cdf) != 1 {
		t.Errorf("cdf=%v mean=%v err=%v", cdf, mean, err)
	}
	_ = metrics.CDF(nil)
}
