module mccs

go 1.22
