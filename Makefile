GO ?= go

.PHONY: all build test vet race check chaos bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the
# full test suite twice — once plain, once under the race detector.
check: build vet test race

# chaos runs the seeded chaos sweep on its own (it is also part of
# `test`); useful when iterating on the harness.
chaos:
	$(GO) test ./internal/chaos/ -v -run 'TestChaosSweep|TestChaosCatchesWeakenedProtocol'

bench:
	$(GO) test -bench=. -benchtime=1x .
