GO ?= go

.PHONY: all build fmt test vet race race-hot check chaos bench bench-json bench-sim-json trace telemetry churn doctor self-heal

all: check

build:
	$(GO) build ./...

# fmt fails if any file needs gofmt; CI runs the same check.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot doubles down on the packages with the most schedule-sensitive
# surface — the scheduler core itself, the collective schedule
# generators, the proxy engine, the strategy autotuner, the lifecycle
# orchestrator, and the diagnosis engine (whose recorder tap runs inside
# span emission) — running them twice under the detector.
race-hot:
	$(GO) test -race -count=2 ./internal/sim/ ./internal/collective/ ./internal/proxy/ ./internal/tuner/ ./internal/orchestrator/ ./internal/diagnosis/ ./internal/remediation/

# check is the CI gate: everything must build, vet clean, and pass the
# full test suite twice — once plain, once under the race detector.
check: build fmt vet test race

# chaos runs the seeded chaos sweep on its own (it is also part of
# `test`); useful when iterating on the harness.
chaos:
	$(GO) test ./internal/chaos/ -v -run 'TestChaosSweep|TestChaosCatchesWeakenedProtocol'

bench:
	$(GO) test -bench=. -benchtime=1x .

# bench-json runs the root per-figure benchmark suite once and writes
# the reported metrics as machine-readable BENCH.json records of
# {bench, metric, value}. CI uploads the file as a build artifact.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x . | $(GO) run ./cmd/mccs-benchjson > BENCH.json

# bench-sim-json measures the scheduler core's hot paths (timer-churn,
# same-instant-wake, proc-handoff) with allocation reporting and writes
# BENCH.sim.json; DESIGN.md §10 quotes these entries and CI uploads the
# file as a build artifact. The pooled paths must report 0 allocs/op
# (asserted by TestHotPathsDoNotAllocate as well).
# The remediation-loop entry measures the full closed detect→diagnose→
# recover loop (chaos self-heal with the control loop attached) against
# its no-loop baseline, so control-plane overhead regressions surface in
# the same artifact.
bench-sim-json:
	( $(GO) test -run '^$$' -bench BenchmarkSimCore -benchtime=10000x ./internal/sim/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRemediationLoop|BenchmarkSelfHealBaseline' -benchtime=3x ./internal/remediation/ ) | $(GO) run ./cmd/mccs-benchjson > BENCH.sim.json

# trace records a short Fig. 7 reconfiguration run with the flight
# recorder and prints the bottleneck-attribution summary. The JSON also
# loads in Perfetto (ui.perfetto.dev) for a visual timeline.
trace:
	$(GO) run ./cmd/mccs-reconfig -run 6s -bg 2s -reconfig 4s -trace reconfig.trace.json
	$(GO) run ./cmd/mccs-trace summarize reconfig.trace.json

# telemetry samples the same run through the live metrics plane and
# renders the operator view: per-tenant goodput, busiest links, SLO
# violations (DESIGN.md §11).
telemetry:
	$(GO) run ./cmd/mccs-reconfig -run 6s -bg 2s -reconfig 4s -telemetry reconfig.telemetry.jsonl
	$(GO) run ./cmd/mccs-top reconfig.telemetry.jsonl

# doctor runs the online health-diagnosis smoke (DESIGN.md §14): the
# contended Fig. 7 run with the diagnosis engine attached live, writing
# the incident JSONL CI uploads as an artifact, then replaying the trace
# through mccs-doctor to print the incident timeline (live and replay
# agree on the incident set by construction).
doctor:
	$(GO) run ./cmd/mccs-reconfig -run 6s -bg 2s -reconfig 4s -trace doctor.trace.json -telemetry doctor.telemetry.jsonl -doctor doctor.incidents.jsonl
	$(GO) run ./cmd/mccs-doctor doctor.trace.json doctor.telemetry.jsonl

# self-heal runs the closed-loop recovery smoke (DESIGN.md §15): the
# chaos self-heal scenario with the diagnosis engine and the remediation
# daemon attached, sweeping a few seeds and writing the deterministic
# remediation event log CI uploads as an artifact.
self-heal:
	$(GO) run ./cmd/mccs-selfheal -seeds 4 -jsonl selfheal.remediation.jsonl

# churn runs the tenant-lifecycle smoke (DESIGN.md §13): the default
# 8-job seeded arrival stream with churn-triggered reconfiguration,
# printing per-job JCT/queueing delay and writing the sampled telemetry
# series CI uploads as an artifact.
churn:
	$(GO) run ./cmd/mccs-churn -telemetry churn.telemetry.jsonl
	$(GO) run ./cmd/mccs-top churn.telemetry.jsonl
