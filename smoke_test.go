// Smoke tests for every runnable entrypoint: each cmd/ tool and each
// example builds and runs to completion on a tiny configuration,
// producing some output. These catch flag drift, panics on startup and
// experiment-harness wiring breaks that package tests (which call the
// underlying libraries directly) cannot see.
package mccs_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestEntrypointSmoke(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		args []string
	}{
		{"quickstart", "./examples/quickstart", nil},
		{"multitenant", "./examples/multitenant", nil},
		{"training", "./examples/training", nil},
		{"reconfig-example", "./examples/reconfig", nil},
		{"bench", "./cmd/mccs-bench", []string{"-gpus=4", "-sizes=1M", "-iters=1", "-warmup=0", "-trials=1"}},
		{"breakdown", "./cmd/mccs-breakdown", []string{"-iters=1"}},
		{"crossrack", "./cmd/mccs-crossrack", []string{"-trials=20", "-seed=1"}},
		{"multi", "./cmd/mccs-multi", []string{"-bytes=4194304", "-iters=2", "-warmup=1", "-trials=1"}},
		{"qos", "./cmd/mccs-qos", []string{"-iters-a=2", "-iters-bc=2"}},
		{"qos-dynamic", "./cmd/mccs-qos", []string{"-dynamic", "-iters-a=2", "-iters-bc=2"}},
		{"reconfig", "./cmd/mccs-reconfig", []string{"-run=2s", "-bg=500ms", "-reconfig=1s"}},
		{"simcluster", "./cmd/mccs-simcluster", []string{"-jobs=3", "-iters=2", "-runs=1"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", append([]string{"run", tc.pkg}, tc.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tc.pkg, tc.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s %v produced no output", tc.pkg, tc.args)
			}
		})
	}
}

// TestTraceFlagSmoke exercises the -trace plumbing end to end: each
// harness entrypoint that accepts -trace writes a file, the file is
// well-formed Chrome trace-event JSON, and mccs-trace can read it back
// and attribute the collectives in it.
func TestTraceFlagSmoke(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		args []string
	}{
		{"bench", "./cmd/mccs-bench", []string{"-gpus=4", "-sizes=1M", "-iters=1", "-warmup=0", "-trials=1"}},
		{"reconfig", "./cmd/mccs-reconfig", []string{"-run=2s", "-bg=500ms", "-reconfig=1s"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), "out.trace.json")
			args := append([]string{"run", tc.pkg}, append(tc.args, "-trace="+path)...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", tc.pkg, err, out)
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("trace file not written: %v", err)
			}
			var events []json.RawMessage
			if err := json.Unmarshal(raw, &events); err != nil {
				t.Fatalf("trace is not a JSON event array: %v", err)
			}
			if len(events) == 0 {
				t.Fatal("trace has no events")
			}

			sum, err := exec.Command("go", "run", "./cmd/mccs-trace", "summarize", path).CombinedOutput()
			if err != nil {
				t.Fatalf("mccs-trace summarize: %v\n%s", err, sum)
			}
			for _, want := range []string{"trace:", "collectives"} {
				if !strings.Contains(string(sum), want) {
					t.Errorf("summary missing %q:\n%s", want, sum)
				}
			}
		})
	}
}
